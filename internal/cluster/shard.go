package cluster

// Sharded control plane, simulation side. With Config.Shards > 1 the
// slave tier is partitioned across the master tier by the same
// deterministic core.ShardMap the live cluster uses (master i owns
// shard i): each master's placement view holds only its own shard, its
// per-tick refresh work is the shard size rather than the fleet size,
// and cross-shard state travels as core.ShardSummary values exchanged
// on a slow gossip tick. When a sharded master would shed (absorption
// gate denies and its shard offers no slave), it first tries to spill
// onto the least-loaded digest of a fresh remote summary, paying a
// second dispatch hop.
//
// The simulation is the byte-deterministic side of the design: the same
// trace and seed always produce the same placements, so experiments can
// compare sharded and global control planes at 1k–10k nodes exactly.

import (
	"msweb/internal/core"
)

// simShardTopK mirrors the live shardTopK digest count.
const simShardTopK = 8

// ShardStats reports sharded control-plane accounting for one run.
type ShardStats struct {
	// Shards is the shard (= master) count.
	Shards int
	// MaxShardSize is the largest shard's slave population.
	MaxShardSize int
	// NodesPolledPerTick is the mean per-master per-tick refresh work
	// (own node + own shard) — the O(shard) claim. An unsharded
	// master's equivalent is the fleet size.
	NodesPolledPerTick float64
	// MeanSummaryAge is the mean age in virtual seconds of the remote
	// summaries a master holds, sampled at every policy tick.
	MeanSummaryAge float64
	// Spilled counts requests served on a remote shard after the local
	// shard shed them; SpillShed counts sheds with no fresh remote
	// candidate left.
	Spilled   int64
	SpillShed int64
}

// setupShards builds the shard map and the per-master views. The views
// alias the cluster-sized load array — a master's reads are bounded by
// its Masters/Slaves lists, so aliasing is safe and keeps refresh
// writes in one place.
func (c *Cluster) setupShards() error {
	m := c.cfg.Masters
	slaves := make([]int, 0, c.cfg.Nodes-m)
	for i := m; i < c.cfg.Nodes; i++ {
		slaves = append(slaves, i)
	}
	sm, err := core.NewShardMap(c.cfg.ShardMapMode, c.cfg.Shards, slaves)
	if err != nil {
		return err
	}
	c.shardMap = sm
	c.shardViews = make([]core.View, m)
	c.shardSums = make([]core.ShardSummary, m)
	c.remoteSums = make([][]core.ShardSummary, m)
	c.remoteAt = make([][]float64, m)
	for s := 0; s < m; s++ {
		c.shardViews[s] = core.View{
			Masters:  []int{s},
			Slaves:   append([]int(nil), sm.Members(s)...),
			Load:     c.view.Load,
			Affinity: c.cfg.Affinity,
		}
		c.remoteSums[s] = make([]core.ShardSummary, m)
		c.remoteAt[s] = make([]float64, m)
		for t := range c.remoteAt[s] {
			c.remoteAt[s][t] = -1
		}
	}
	return nil
}

// gossipPeriod is the summary exchange period (default 4× the load
// refresh, matching the live default).
func (c *Cluster) gossipPeriod() float64 {
	if c.cfg.GossipEvery > 0 {
		return c.cfg.GossipEvery
	}
	return 4 * c.cfg.LoadRefresh
}

// refreshShardSummaries rebuilds each shard's own summary after a load
// refresh and accounts the per-master poll work (one self-sample plus
// the shard members).
func (c *Cluster) refreshShardSummaries() {
	atNs := int64(c.eng.Now() * 1e9)
	for s := range c.shardSums {
		members := c.shardMap.Members(s)
		core.BuildShardSummary(&c.shardSums[s], s, atNs, members, c.view.Load, simShardTopK)
		c.pollWork += int64(len(members)) + 1
	}
	c.pollRounds++
}

// gossipShards delivers every shard's current summary to every other
// master — the sim analogue of the /shard pull round (piggybacked copies
// only make summaries fresher in the live plane; the slow tick is the
// guaranteed floor modeled here).
func (c *Cluster) gossipShards() {
	now := c.eng.Now()
	for o := range c.remoteSums {
		for s := range c.shardSums {
			if s == o {
				continue
			}
			dst := &c.remoteSums[o][s]
			top := append(dst.Top[:0], c.shardSums[s].Top...)
			*dst = c.shardSums[s]
			dst.Top = top
			c.remoteAt[o][s] = now
		}
	}
}

// sampleSummaryAge accumulates the age of every held remote summary —
// the staleness a spill decision would act on right now.
func (c *Cluster) sampleSummaryAge() {
	now := c.eng.Now()
	for o := range c.remoteAt {
		for s, at := range c.remoteAt[o] {
			if s == o || at < 0 {
				continue
			}
			c.ageSum += now - at
			c.ageN++
		}
	}
}

// pickSimSpill returns the best available node among fresh remote
// summaries' digests (lowest RSRC, ties to the first found — summary
// and digest order are deterministic), or -1 when no shard has a fresh
// summary with a usable digest.
func (c *Cluster) pickSimSpill(master int) int {
	now := c.eng.Now()
	ttl := 3 * c.gossipPeriod()
	best, bestCost := -1, 0.0
	for s := range c.remoteSums[master] {
		if s == master || c.remoteAt[master][s] < 0 || now-c.remoteAt[master][s] > ttl {
			continue
		}
		for _, d := range c.remoteSums[master][s].Top {
			if !c.available[d.Node] {
				continue
			}
			cost := core.NodeRSRC(core.DefaultW, d.Load)
			if best < 0 || cost < bestCost {
				best, bestCost = d.Node, cost
			}
		}
	}
	return best
}

// shardStats snapshots the run's sharding accounting (nil when
// unsharded).
func (c *Cluster) shardStats() *ShardStats {
	if c.shardMap == nil {
		return nil
	}
	st := &ShardStats{Shards: c.cfg.Shards, Spilled: c.spilled, SpillShed: c.spillShed}
	for s := 0; s < c.cfg.Shards; s++ {
		if n := len(c.shardMap.Members(s)); n > st.MaxShardSize {
			st.MaxShardSize = n
		}
	}
	if c.pollRounds > 0 {
		st.NodesPolledPerTick = float64(c.pollWork) / float64(c.pollRounds*int64(c.cfg.Masters))
	}
	if c.ageN > 0 {
		st.MeanSummaryAge = c.ageSum / float64(c.ageN)
	}
	return st
}
