package cluster

import (
	"testing"

	"msweb/internal/core"
	"msweb/internal/trace"
	"msweb/internal/workload"
)

func genSessions(t *testing.T, n int, rate, think float64, seed int64) []workload.Session {
	t.Helper()
	sessions, err := workload.Generate(workload.Config{
		Profile:      trace.KSU,
		Sessions:     n,
		SessionRate:  rate,
		MeanRequests: 6,
		MeanThink:    think,
		MuH:          1200,
		R:            1.0 / 40,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sessions
}

func TestClosedLoopCompletesAllRequests(t *testing.T) {
	sessions := genSessions(t, 300, 30, 0.2, 51)
	eng, c := newClusterForTest(t, DefaultConfig(6, 2))
	res, err := c.RunClosedLoop(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count != workload.TotalRequests(sessions) {
		t.Fatalf("counted %d of %d requests", res.Summary.Count, workload.TotalRequests(sessions))
	}
	if res.StretchFactor < 1 {
		t.Fatalf("stretch %v < 1", res.StretchFactor)
	}
	_ = eng
}

func TestClosedLoopRejectsBadSessions(t *testing.T) {
	_, c := newClusterForTest(t, DefaultConfig(4, 1))
	bad := []workload.Session{{Start: 0}}
	if _, err := c.RunClosedLoop(bad); err == nil {
		t.Fatal("empty session accepted")
	}
}

func TestClosedLoopOrdering(t *testing.T) {
	// One session, long demands, zero think: requests execute strictly
	// sequentially, so the cluster never holds two of its requests
	// concurrently and total time ≈ sum of demands.
	sess := workload.Session{
		Start: 0,
		Requests: []trace.Request{
			{Class: trace.Static, Demand: 0.010, CPUWeight: 0.5},
			{Class: trace.Static, Demand: 0.010, CPUWeight: 0.5},
			{Class: trace.Static, Demand: 0.010, CPUWeight: 0.5},
		},
		Thinks: []float64{0.005, 0.005},
	}
	_, c := newClusterForTest(t, DefaultConfig(2, 1))
	res, err := c.RunClosedLoop([]workload.Session{sess})
	if err != nil {
		t.Fatal(err)
	}
	// 3 × 10 ms service + 2 × 5 ms think = 40 ms minimum.
	if res.SimulatedSeconds < 0.040-1e-9 {
		t.Fatalf("closed loop finished in %v, below the sequential minimum", res.SimulatedSeconds)
	}
	if res.Summary.Count != 3 {
		t.Fatalf("count %d", res.Summary.Count)
	}
}

// The methodological point: under overload, open-loop stretch explodes
// while closed-loop sessions self-throttle to the service capacity.
func TestClosedLoopSelfThrottlesUnderOverload(t *testing.T) {
	// Offered load ~2x capacity for a 2-node cluster if users ignored
	// responses; closed loop keeps it sane.
	sessions := genSessions(t, 400, 100, 0.05, 52)
	_, c := newClusterForTest(t, DefaultConfig(2, 1))
	closed, err := c.RunClosedLoop(sessions)
	if err != nil {
		t.Fatal(err)
	}

	// The open-loop equivalent: same requests at the sessions' natural
	// pace with think times but no response feedback.
	var open trace.Trace
	now := 0.0
	for _, s := range sessions {
		at := s.Start
		for i, r := range s.Requests {
			r.Arrival = at
			open.Requests = append(open.Requests, r)
			if i < len(s.Thinks) {
				at += s.Thinks[i] + r.Demand
			}
		}
	}
	// Arrivals must be sorted for a trace replay.
	for i := range open.Requests {
		if open.Requests[i].Arrival < now {
			open.Requests[i].Arrival = now
		}
		now = open.Requests[i].Arrival
	}
	openRes, err := Simulate(DefaultConfig(2, 1), core.NewMS(nil, 1), &open)
	if err != nil {
		t.Fatal(err)
	}

	if closed.StretchFactor >= openRes.StretchFactor {
		t.Fatalf("closed loop (%v) did not self-throttle below open loop (%v)",
			closed.StretchFactor, openRes.StretchFactor)
	}
}
