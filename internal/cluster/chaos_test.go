package cluster

import (
	"testing"
	"testing/quick"

	"msweb/internal/core"
	"msweb/internal/trace"
)

// The chaos property: with every feature enabled at once — caching,
// affinity, failures, recruitment, adaptation, heterogeneous speeds —
// the cluster must still complete every request exactly once and return
// a sane stretch factor.
func TestEverythingAtOnceProperty(t *testing.T) {
	f := func(seed int64, crashNodeRaw, crashTimeRaw uint8) bool {
		const p = 8
		tr, err := trace.Generate(trace.GenConfig{
			Profile: trace.KSU, Lambda: 250, Requests: 1500,
			MuH: 1200, R: 1.0 / 40, Seed: seed,
			Arrival: trace.MMPPArrivals, BurstFactor: 3,
			BurstDuration: 1, NormalDuration: 3,
		})
		if err != nil {
			return false
		}
		span := tr.Duration()

		cfg := DefaultConfig(p, 2)
		cfg.Speeds = []float64{1, 1, 1, 2, 1, 2, 1, 1}
		cfg.Cache = &CacheConfig{Capacity: 128, TTL: 30}
		cfg.Affinity = core.ScriptAffinity{1: {3, 5}}
		cfg.InitiallyDown = []int{7}
		cfg.Adaptive = &AdaptiveMasters{Period: 2}
		cfg.AutoRecruit = &AutoRecruit{Spares: []int{7}, Period: 0.5, HighRate: 300, LowRate: 200}
		// A random mid-run crash and recovery of a non-spare slave.
		crashNode := 2 + int(crashNodeRaw)%4 // nodes 2..5
		crashAt := 0.1*span + 0.6*span*float64(crashTimeRaw)/255
		cfg.Events = []AvailabilityEvent{
			{Node: crashNode, At: crashAt, Available: false},
			{Node: crashNode, At: crashAt + 0.2*span, Available: true},
		}

		res, err := Simulate(cfg, core.NewMS(core.SampleW(tr, 16), seed), tr)
		if err != nil {
			return false
		}
		if res.Summary.Count != 1500 {
			return false
		}
		if res.StretchFactor < 1 || res.StretchFactor > 1e5 {
			return false
		}
		// Per-node conservation.
		for _, st := range res.NodeStats {
			if st.Completed+st.Aborted != st.Submitted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
