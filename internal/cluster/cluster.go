// Package cluster assembles the trace-driven cluster simulation: p
// simos.Node machines, a front end that spreads incoming requests
// uniformly over the master tier (DNS rotation / switch behaviour), a
// core.Policy that picks the execution node, periodically refreshed
// rstat()-style load information, and the 1 ms remote-CGI dispatch
// latency of the paper's prototype.
//
// A Run replays a trace.Trace to completion and reports the stretch
// factor and per-class statistics the paper's experiments compare.
package cluster

import (
	"fmt"

	"msweb/internal/core"
	"msweb/internal/dyncache"
	"msweb/internal/metrics"
	"msweb/internal/obs"
	"msweb/internal/queuemodel"
	"msweb/internal/rng"
	"msweb/internal/sim"
	"msweb/internal/simos"
	"msweb/internal/trace"
)

// CacheConfig sizes the shared dynamic-content cache.
type CacheConfig struct {
	// Capacity is the number of cached responses.
	Capacity int
	// TTL is each entry's freshness lifetime in seconds.
	TTL float64
	// HitDemand is the service demand of answering from the cache — a
	// buffer copy plus protocol work, comparable to a small static
	// fetch (default 1/2400 s, half the mean static demand).
	HitDemand float64
}

// AutoRecruit reacts to load peaks: when the measured arrival rate
// crosses HighRate, the listed non-dedicated spare nodes (which must be
// in InitiallyDown) are brought into the slave tier; when it falls below
// LowRate they are released again — the paper's "dynamically recruit
// idle resources in handling peak load".
type AutoRecruit struct {
	Spares   []int
	Period   float64
	HighRate float64
	LowRate  float64
}

// AdaptiveMasters reconfigures the master-tier size on-line: every
// Period the cluster re-estimates λ, a, μ_h and μ_c from the completed
// window and applies Theorem 1's numeric minimization. Figure 5
// compares this against a fixed configuration.
type AdaptiveMasters struct {
	// Period between reconfigurations in seconds.
	Period float64
	// MinM/MaxM clamp the chosen master count (defaults 1 and p−1).
	MinM, MaxM int
}

// Config describes one simulated cluster.
type Config struct {
	// Nodes is the cluster size p.
	Nodes int
	// Masters is the initial master-tier size m; masters are nodes
	// 0..m−1. Use Nodes for an all-master (flat / M/S-1) topology.
	Masters int
	// OS configures every node (per-node overrides via Speeds).
	OS simos.Config
	// Discipline selects the per-node CPU scheduling discipline:
	// core.DisciplineMLFQ (default), DisciplineRR (single-level
	// round-robin) or DisciplineFCFS (single level, run-to-completion
	// CPU chunks). It adjusts OS before node construction.
	Discipline string
	// EnableShedding lets the cluster shed requests the way the live
	// master does: when no slaves are in view and the policy's
	// absorption gate denies local execution, the request completes
	// immediately as shed instead of queueing. Off by default — the
	// paper's replays run open-loop without shedding.
	EnableShedding bool
	// Speeds optionally assigns per-node CPU speed factors for the
	// heterogeneous extension; nil means homogeneous.
	Speeds []float64
	// LoadRefresh is the load-information period (rstat polling).
	LoadRefresh float64
	// PolicyTick is the reservation-recompute period.
	PolicyTick float64
	// RemoteLatency is the remote CGI dispatch latency (paper: 1 ms,
	// the TCP connection time; fork is charged separately by the node).
	RemoteLatency float64
	// WarmupFraction drops samples of requests arriving in the first
	// fraction of the trace span from the reported statistics, so
	// steady-state stretch is not diluted by the empty-system start.
	WarmupFraction float64
	// Affinity pins CGI scripts to node subsets (partial replication).
	Affinity core.ScriptAffinity
	// Cache enables the Swala-style dynamic-content cache at the
	// master tier: repeat invocations of a cacheable script (same
	// script, same parameters) are answered without content generation
	// while the cached response is fresh.
	Cache *CacheConfig
	// Adaptive enables on-line master-count adaptation.
	Adaptive *AdaptiveMasters
	// Autoscale enables the full online autoscaler: Theorem 1 re-planning
	// of m plus powering slaves on and off against the measured load,
	// with c/μ-rule scale-down ordering and exponential hold-epoch
	// hysteresis (see Autoscale). Mutually exclusive with Adaptive (the
	// autoscaler subsumes it) and AutoRecruit.
	Autoscale *Autoscale
	// SLOResponse, when positive, counts every sampled request against a
	// response-time SLO: Result.SLOAttainment reports the fraction of
	// counted samples at or under this many (virtual) seconds.
	SLOResponse float64
	// AutoRecruit enables reactive recruitment of non-dedicated nodes
	// at peak load (see AutoRecruit).
	AutoRecruit *AutoRecruit
	// SampleHook, when set, observes every counted sample with the
	// request's arrival time — the feed for time-series analyses.
	SampleHook func(arrival float64, sample metrics.Sample)
	// Events is an optional availability schedule: node crashes,
	// recoveries and dynamic recruitment (see AvailabilityEvent).
	Events []AvailabilityEvent
	// InitiallyDown lists nodes that start outside the cluster
	// (non-dedicated machines recruited later by an Up event).
	InitiallyDown []int
	// RetryDelay is the failover-detection delay before requests lost
	// to a node failure are restarted elsewhere (paper: switches give
	// "sub-second failure detection").
	RetryDelay float64
	// Tracer, when non-nil, receives the lifecycle events of every
	// request: arrival, placement decision (with RSRC annotation when
	// the policy explains itself), dispatch, per-burst CPU/disk phases
	// and completion. Nil disables tracing at a nil-check per event.
	Tracer obs.Tracer
	// Seed drives the front end's random master selection.
	Seed int64
	// Shards > 1 partitions the slave tier across the master tier
	// (master i owns shard i; must equal the initial Masters): each
	// master's policy sees and books against only its own shard,
	// refreshed at O(shard) per tick, with shed requests spilling
	// cross-shard via gossiped summaries. The shard map is
	// epoch-versioned: availability events, adaptation, recruitment and
	// the autoscaler rebalance it live (consistent-hash ring, so only
	// ~1/m of the slaves move per master change). 0 or 1 keeps the
	// global shared view.
	Shards int
	// ShardMapMode selects the partitioning function: "hash"
	// (consistent ring, the default) or "static" (position modulo).
	ShardMapMode string
	// GossipEvery is the cross-shard summary exchange period in seconds
	// (default 4×LoadRefresh).
	GossipEvery float64
}

// DefaultConfig returns a cluster configured with the paper's constants.
func DefaultConfig(nodes, masters int) Config {
	return Config{
		Nodes:         nodes,
		Masters:       masters,
		OS:            simos.DefaultConfig(),
		LoadRefresh:   0.200,
		PolicyTick:    0.500,
		RemoteLatency: 0.001,
		RetryDelay:    0.100,
		Seed:          1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: need at least one node")
	case c.Masters < 1 || c.Masters > c.Nodes:
		return fmt.Errorf("cluster: masters %d outside [1, %d]", c.Masters, c.Nodes)
	case c.LoadRefresh <= 0:
		return fmt.Errorf("cluster: load refresh period must be positive")
	case c.PolicyTick <= 0:
		return fmt.Errorf("cluster: policy tick period must be positive")
	case c.RemoteLatency < 0:
		return fmt.Errorf("cluster: negative remote latency")
	case c.WarmupFraction < 0 || c.WarmupFraction >= 1:
		return fmt.Errorf("cluster: warmup fraction %v outside [0, 1)", c.WarmupFraction)
	case c.Speeds != nil && len(c.Speeds) != c.Nodes:
		return fmt.Errorf("cluster: %d speeds for %d nodes", len(c.Speeds), c.Nodes)
	case c.Adaptive != nil && c.Adaptive.Period <= 0:
		return fmt.Errorf("cluster: adaptive period must be positive")
	case c.AutoRecruit != nil && (c.AutoRecruit.Period <= 0 || c.AutoRecruit.HighRate <= 0 ||
		c.AutoRecruit.LowRate < 0 || c.AutoRecruit.LowRate >= c.AutoRecruit.HighRate):
		return fmt.Errorf("cluster: auto-recruit needs positive period and LowRate < HighRate")
	case c.RetryDelay < 0:
		return fmt.Errorf("cluster: negative retry delay")
	case c.Shards > 1 && c.Shards != c.Masters:
		return fmt.Errorf("cluster: shards %d must equal masters %d", c.Shards, c.Masters)
	case c.GossipEvery < 0:
		return fmt.Errorf("cluster: negative gossip period")
	case c.SLOResponse < 0:
		return fmt.Errorf("cluster: negative SLO response bound")
	case c.Autoscale != nil && c.Autoscale.Period <= 0:
		return fmt.Errorf("cluster: autoscale period must be positive")
	case c.Autoscale != nil && (c.Adaptive != nil || c.AutoRecruit != nil):
		return fmt.Errorf("cluster: autoscale subsumes Adaptive and AutoRecruit; configure only one")
	}
	if _, err := disciplinedOS(c.OS, c.Discipline); err != nil {
		return err
	}
	if c.Cache != nil {
		if c.Cache.Capacity <= 0 || c.Cache.TTL <= 0 {
			return fmt.Errorf("cluster: cache needs positive capacity and TTL")
		}
		if c.Cache.HitDemand < 0 {
			return fmt.Errorf("cluster: negative cache hit demand")
		}
	}
	if c.AutoRecruit != nil {
		for _, id := range c.AutoRecruit.Spares {
			if id < 0 || id >= c.Nodes {
				return fmt.Errorf("cluster: auto-recruit spare %d of %d", id, c.Nodes)
			}
		}
	}
	for script, nodes := range c.Affinity {
		for _, id := range nodes {
			if id < 0 || id >= c.Nodes {
				return fmt.Errorf("cluster: affinity for script %d names node %d of %d", script, id, c.Nodes)
			}
		}
	}
	if err := validateEvents(c.Events, c.Nodes); err != nil {
		return err
	}
	for _, id := range c.InitiallyDown {
		if id < 0 || id >= c.Nodes {
			return fmt.Errorf("cluster: initially-down node %d of %d", id, c.Nodes)
		}
	}
	return c.OS.Validate()
}

// Result summarizes one simulation run.
type Result struct {
	Policy  string
	Summary metrics.Summary
	// StretchFactor is the headline metric (== Summary.StretchFactor).
	StretchFactor float64
	// TotalDynamics counts dynamic requests; MasterDynamics those
	// executed at masters; RemoteDynamics those dispatched off the
	// receiving master.
	TotalDynamics  int64
	MasterDynamics int64
	RemoteDynamics int64
	// FinalMasters is the master count at the end (≠ initial under
	// adaptation); MasterHistory records each adaptation decision.
	FinalMasters  int
	MasterHistory []int
	// Failovers counts requests restarted after a node failure.
	Failovers int64
	// Shed counts requests refused by the admission gate (only with
	// Config.EnableShedding).
	Shed int64
	// CacheStats reports dynamic-content cache activity (zero value
	// when caching is disabled).
	CacheStats dyncache.Stats
	// Recruitments and Releases count auto-recruit transitions.
	Recruitments, Releases int64
	// SLOAttainment is the fraction of counted samples whose response
	// met Config.SLOResponse (0 when the SLO is unset); SLOCount is the
	// sample population behind it.
	SLOAttainment float64
	SLOCount      int64
	// NodeHours integrates the powered node population over the run's
	// virtual time — the operating-cost metric the autoscaler trades
	// against the SLO. Every node counts as powered except while the
	// autoscaler has switched it off.
	NodeHours float64
	// Autoscale reports online-autoscaler activity (nil when disabled).
	Autoscale *AutoscaleStats
	// Shards reports sharded control-plane accounting (nil when the run
	// used the global shared view).
	Shards *ShardStats
	// NodeStats carries per-node OS counters.
	NodeStats []simos.Stats
	// NodeUtilization carries per-node lifetime CPU and disk busy
	// fractions, for load-balance inspection.
	NodeUtilization []ResourceUtilization
	// SimulatedSeconds is the virtual time at which the run drained.
	SimulatedSeconds float64
	// Events is the number of simulation events fired.
	Events uint64
}

// ResourceUtilization is one node's lifetime busy fractions.
type ResourceUtilization struct {
	CPU  float64
	Disk float64
}

// Cluster is a configured simulation instance.
type Cluster struct {
	cfg    Config
	eng    *sim.Engine
	nodes  []*simos.Node
	policy core.Policy
	view   core.View
	front  *rng.Stream

	collector *metrics.Collector
	completed int
	total     int

	totalDyn  int64
	masterDyn int64
	remoteDyn int64
	history   []int

	roleMasters int
	available   []bool
	// powered is the autoscaler's graceful on/off state, distinct from
	// available (crash semantics): a powered-off node leaves the view but
	// finishes its queued work and is never drained.
	powered   []bool
	inflight  map[int64]*pendingRequest
	nextReqID int64
	failovers int64
	shed      int64

	// SLO accounting (Config.SLOResponse > 0).
	sloOK, sloN int64
	// Node-hours integration: poweredCount nodes since lastPowerAt.
	poweredCount int
	lastPowerAt  float64
	nodeSeconds  float64

	// Online autoscaler state (Config.Autoscale != nil); see autoscale.go.
	asHold      float64 // current hold-epoch length (s)
	asHoldUntil float64 // no scaling action before this virtual time
	asStats     *AutoscaleStats

	// trace and warmupUntil back the typed arrival events: each arrival
	// is scheduled as an index into trace.Requests instead of a closure.
	trace       *trace.Trace
	warmupUntil float64
	// freePending recycles pendingRequest structs; with it, the
	// dispatch→submit→complete path of a request allocates nothing.
	freePending []*pendingRequest

	// Typed-event handlers bound once at construction (see sim.CallFunc).
	arrivalC  sim.CallFunc
	submitC   sim.CallFunc
	completeC func(arg any, now float64)

	// explainer is the policy's PlacementExplainer side, resolved once
	// at construction so tracing skips the per-request type assertion.
	explainer core.PlacementExplainer
	// gate is the policy's absorption-gate side (pipeline policies),
	// consulted by the optional shedding path.
	gate core.AbsorptionGate

	cache          *dyncache.Cache
	cacheHitDemand float64

	winArrivals  int64 // arrivals since the last auto-recruit check
	recruitments int64
	releases     int64
	sparesActive bool

	// windowed estimators for adaptive reconfiguration
	winStatic, winDynamic  int64
	winDemandH, winDemandC float64
	winDoneH, winDoneC     int64
	tickers                []*sim.Ticker

	// sharded control plane (nil/zero when Config.Shards ≤ 1); see
	// shard.go for the per-master views, summaries and accounting. The
	// map is epoch-versioned and rebuilt by reshard() on every topology
	// change; shardOf maps a master's node id to its shard index (the
	// two coincide only in the initial static layout).
	shardMap     *core.ShardMap
	shardOf      map[int]int
	shardViews   []core.View
	shardSums    []core.ShardSummary
	remoteSums   [][]core.ShardSummary
	remoteAt     [][]float64
	pollWork     int64
	pollSamples  int64
	ageSum       float64
	ageN         int64
	spilled      int64
	spillShed    int64
	epochChanges int64
	shardMoved   int64
}

// New builds a cluster around an existing engine.
func New(eng *sim.Engine, cfg Config, policy core.Policy) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		eng:       eng,
		policy:    policy,
		front:     rng.New(cfg.Seed),
		collector: metrics.NewCollector(),
		inflight:  make(map[int64]*pendingRequest),
		nextReqID: 1, // 0 means "untraced" to the node OS
	}
	c.explainer, _ = policy.(core.PlacementExplainer)
	c.gate, _ = policy.(core.AbsorptionGate)
	c.arrivalC = c.arrival
	c.submitC = c.submitCall
	c.completeC = c.complete
	c.available = make([]bool, cfg.Nodes)
	c.powered = make([]bool, cfg.Nodes)
	for i := range c.available {
		c.available[i] = true
		c.powered[i] = true
	}
	for _, id := range cfg.InitiallyDown {
		c.available[id] = false
	}
	c.poweredCount = cfg.Nodes
	if cfg.Autoscale != nil {
		c.asStats = &AutoscaleStats{}
		c.asHold = cfg.Autoscale.holdInitial()
	}
	if cfg.Cache != nil {
		hit := cfg.Cache.HitDemand
		if hit == 0 {
			hit = 1.0 / 2400
		}
		cache, err := dyncache.New(cfg.Cache.Capacity, cfg.Cache.TTL)
		if err != nil {
			return nil, err
		}
		c.cache = cache
		c.cacheHitDemand = hit
	}
	osBase, err := disciplinedOS(cfg.OS, cfg.Discipline)
	if err != nil {
		return nil, err
	}
	c.nodes = make([]*simos.Node, cfg.Nodes)
	for i := range c.nodes {
		oscfg := osBase
		if cfg.Speeds != nil {
			oscfg.SpeedFactor = cfg.Speeds[i]
		}
		n, err := simos.NewNode(eng, i, oscfg)
		if err != nil {
			return nil, err
		}
		if cfg.Tracer != nil {
			n.SetTracer(cfg.Tracer)
		}
		c.nodes[i] = n
	}
	c.view = core.View{Load: make([]core.Load, cfg.Nodes), Affinity: cfg.Affinity}
	for i := range c.view.Load {
		speed := 1.0
		if cfg.Speeds != nil {
			speed = cfg.Speeds[i]
		}
		c.view.Load[i] = core.Load{CPUIdle: 1, DiskAvail: 1, Speed: speed}
	}
	c.setMasters(cfg.Masters)
	if cfg.Shards > 1 {
		if err := c.setupShards(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// setMasters assigns the master role to nodes 0..m−1; the effective
// tiers are the role filtered by current availability.
func (c *Cluster) setMasters(m int) {
	if m < 1 {
		m = 1
	}
	if m > c.cfg.Nodes {
		m = c.cfg.Nodes
	}
	c.roleMasters = m
	c.view.Masters = make([]int, 0, m)
	c.view.Slaves = make([]int, 0, c.cfg.Nodes-m)
	c.recomputeView()
	c.history = append(c.history, m)
}

// Masters returns the current master count.
func (c *Cluster) Masters() int { return len(c.view.Masters) }

// refreshLoad polls every node's load counters into the shared view.
func (c *Cluster) refreshLoad() {
	c.view.Now = c.eng.Now()
	for i, n := range c.nodes {
		cpuQ, diskQ := n.QueueLengths()
		c.view.Load[i].CPUIdle = n.CPUIdleRatio()
		c.view.Load[i].DiskAvail = n.DiskAvailRatio()
		c.view.Load[i].CPUQueue = cpuQ
		c.view.Load[i].DiskQueue = diskQ
	}
	if c.shardMap != nil {
		for s := range c.shardViews {
			c.shardViews[s].Now = c.view.Now
		}
		c.refreshShardSummaries()
	}
}

// adapt re-plans the master count from the last window's measurements.
func (c *Cluster) adapt() {
	period := c.cfg.Adaptive.Period
	stat, dyn := c.winStatic, c.winDynamic
	c.winStatic, c.winDynamic = 0, 0
	doneH, doneC := c.winDoneH, c.winDoneC
	demH, demC := c.winDemandH, c.winDemandC
	c.winDoneH, c.winDoneC, c.winDemandH, c.winDemandC = 0, 0, 0, 0

	if stat == 0 || dyn == 0 || doneH == 0 || doneC == 0 {
		return // not enough signal this window
	}
	params := queuemodel.Params{
		P:       c.cfg.Nodes,
		LambdaH: float64(stat) / period,
		LambdaC: float64(dyn) / period,
		MuH:     float64(doneH) / demH,
		MuC:     float64(doneC) / demC,
	}
	plan, err := params.OptimalPlan()
	if err != nil {
		return // saturated or degenerate window; keep configuration
	}
	m := plan.M
	if min := c.cfg.Adaptive.MinM; min > 0 && m < min {
		m = min
	}
	max := c.cfg.Adaptive.MaxM
	if max <= 0 {
		max = c.cfg.Nodes - 1
	}
	if m > max {
		m = max
	}
	if m != c.Masters() {
		c.setMasters(m)
	}
}

// dispatch routes one trace request at its arrival time.
func (c *Cluster) dispatch(req trace.Request, countSample bool) {
	c.dispatchAt(req, countSample, c.eng.Now())
}

// dispatchAt routes a request whose logical arrival time may lie in the
// past (failover restarts keep the original arrival so the lost time
// counts against the response).
func (c *Cluster) dispatchAt(req trace.Request, countSample bool, arrival float64) {
	c.dispatchFull(req, countSample, arrival, nil)
}

// dispatchFull additionally notifies onDone at completion — the hook the
// closed-loop driver uses to issue a session's next request.
func (c *Cluster) dispatchFull(req trace.Request, countSample bool, arrival float64, onDone func(now float64)) {
	if len(c.view.Masters) == 0 {
		// Whole cluster down: retry once capacity returns.
		c.eng.After(c.cfg.RetryDelay, func() { c.dispatchFull(req, countSample, arrival, onDone) })
		return
	}
	c.winArrivals++
	master := c.view.Masters[c.front.Intn(len(c.view.Masters))]
	view := &c.view
	shard := -1
	if c.shardMap != nil {
		// Sharded: this master places within its own shard only. The
		// shard index comes from the current epoch's map — master node
		// ids and shard indices coincide only in the initial layout.
		if s, ok := c.shardOf[master]; ok {
			shard = s
			view = &c.shardViews[s]
		}
	}

	// Optional live-parity shedding: with no slaves in view and the
	// policy's absorption gate refusing local execution, the master
	// refuses the request outright (the sim analogue of the 503 path).
	// A sharded master first tries to spill onto the least-loaded fresh
	// remote digest, the way the live master does after shouldShed.
	spillTarget := -1
	if c.cfg.EnableShedding && c.gate != nil && len(view.Slaves) == 0 &&
		c.gate.DeniesMasterAbsorption(master, view) {
		if shard >= 0 {
			spillTarget = c.pickSimSpill(shard)
		}
		if spillTarget < 0 {
			if c.shardMap != nil {
				c.spillShed++
			}
			c.shed++
			c.completed++
			if countSample && c.cfg.SLOResponse > 0 {
				c.sloN++ // a shed counted request is an SLO miss
			}
			if onDone != nil {
				onDone(c.eng.Now())
			}
			return
		}
	}

	reqID := c.nextReqID
	c.nextReqID++
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(obs.Event{
			Kind: obs.KindArrival, Req: reqID, Time: arrival,
			Class: req.Class.String(), Value: req.Demand,
		})
	}

	// Swala extension: a fresh cached response short-circuits content
	// generation — the master serves it like a small static fetch.
	if c.cache != nil && req.Class == trace.Dynamic && req.Param != 0 {
		key := dyncache.Key{Script: req.Script, Param: req.Param}
		if c.cache.Lookup(key, c.eng.Now()) {
			hit := req
			hit.Class = trace.Static // served without a CGI process
			hit.Demand = c.cacheHitDemand
			hit.CPUWeight = 0.5
			hit.MemPages = int(req.Size / c.cfg.OS.PageSize)
			c.runCacheHit(hit, reqID, countSample, arrival, master, onDone)
			return
		}
	}

	var target int
	if spillTarget >= 0 {
		target = spillTarget
		c.spilled++
	} else {
		target = c.policy.Place(core.Request{Class: req.Class, Script: req.Script}, master, view)
	}
	if c.cfg.Tracer != nil {
		ev := obs.Event{Kind: obs.KindDecision, Req: reqID, Time: c.eng.Now(), Node: target}
		if c.explainer != nil && spillTarget < 0 {
			pl := c.explainer.LastPlacement()
			ev.Value = pl.RSRC
			ev.Admit = pl.MasterAdmitted
		}
		c.cfg.Tracer.Emit(ev)
	}

	if req.Class == trace.Dynamic {
		c.totalDyn++
		c.winDynamic++
		if isMaster(target, c.view.Masters) {
			c.masterDyn++
		}
	} else {
		c.winStatic++
	}

	latency := 0.0
	if target != master && req.Class == trace.Dynamic {
		latency = c.cfg.RemoteLatency
		c.remoteDyn++
	}
	if spillTarget >= 0 {
		// Spills relay through the remote shard's owner: two hops.
		latency = 2 * c.cfg.RemoteLatency
	}
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(obs.Event{
			Kind: obs.KindDispatch, Req: reqID, Time: c.eng.Now(),
			Node: target, Remote: latency > 0,
		})
	}

	pr := c.newPending()
	pr.id = reqID
	pr.req = req
	pr.node = target
	pr.arrival = arrival
	pr.count = countSample
	pr.onDone = onDone
	c.inflight[reqID] = pr

	if latency > 0 {
		c.eng.AfterCall(latency, c.submitC, pr, 0)
	} else {
		c.submitNow(pr)
	}
}

// newPending pops a recycled pendingRequest (zeroed) or allocates one.
func (c *Cluster) newPending() *pendingRequest {
	if k := len(c.freePending); k > 0 {
		pr := c.freePending[k-1]
		c.freePending[k-1] = nil
		c.freePending = c.freePending[:k-1]
		return pr
	}
	return &pendingRequest{}
}

// releasePending zeroes pr and returns it to the pool. The caller must
// hold the last live reference; see the ownership rules on submitNow and
// applyAvailability.
func (c *Cluster) releasePending(pr *pendingRequest) {
	*pr = pendingRequest{}
	c.freePending = append(c.freePending, pr)
}

// arrival is the typed-event handler replaying trace request f64 (its
// index in c.trace.Requests, exact for any realistic trace length).
func (c *Cluster) arrival(_ any, f64 float64) {
	req := c.trace.Requests[int(f64)]
	c.dispatch(req, req.Arrival >= c.warmupUntil)
}

// submitCall unpacks the dispatch-latency event.
func (c *Cluster) submitCall(arg any, _ float64) { c.submitNow(arg.(*pendingRequest)) }

// submitNow hands pr's job to its target node. Ownership: pr may have
// been disowned while the dispatch-latency event was in flight — the
// identity check (not just key presence) guards against a recycled
// struct impersonating a newer request.
func (c *Cluster) submitNow(pr *pendingRequest) {
	if c.inflight[pr.id] != pr {
		// A node-failure handler already took ownership of this
		// request (it was in the dispatch-latency window when its
		// target crashed) and restarted it; submitting now would
		// duplicate the work and corrupt completion accounting. This
		// event held the last reference to the orphaned struct.
		c.releasePending(pr)
		return
	}
	if !c.available[pr.node] {
		// The target failed inside the dispatch latency window;
		// the failure handler has not seen this request, so
		// re-place it ourselves.
		delete(c.inflight, pr.id)
		c.failovers++
		req, count, arrival, onDone := pr.req, pr.count, pr.arrival, pr.onDone
		c.releasePending(pr)
		c.eng.After(c.cfg.RetryDelay, func() { c.dispatchFull(req, count, arrival, onDone) })
		return
	}
	pr.submitted = true
	traceID := int64(0)
	if c.cfg.Tracer != nil {
		traceID = pr.id
	}
	req := &pr.req
	c.nodes[pr.node].Submit(simos.Job{
		CPUTime:  req.Demand * req.CPUWeight,
		IOTime:   req.Demand * (1 - req.CPUWeight),
		MemPages: req.MemPages,
		Fork:     req.Class == trace.Dynamic,
		TraceID:  traceID,
		DoneCall: c.completeC,
		DoneArg:  pr,
	})
}

// complete is the typed completion handler for every dispatched request:
// accounting, cache fill, sample collection, and recycling of the
// pendingRequest (pr is dead once released; onDone runs after).
func (c *Cluster) complete(arg any, now float64) {
	pr := arg.(*pendingRequest)
	delete(c.inflight, pr.id)
	req := &pr.req
	if c.cache != nil && req.Class == trace.Dynamic && req.Param != 0 {
		c.cache.Insert(dyncache.Key{Script: req.Script, Param: req.Param}, req.Size, now)
	}
	response := now - pr.arrival
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Emit(obs.Event{
			Kind: obs.KindComplete, Req: pr.id, Time: now,
			Node: pr.node, Value: response,
		})
	}
	c.policy.ObserveCompletion(req.Class, response, req.Demand)
	if req.Class == trace.Dynamic {
		c.winDoneC++
		c.winDemandC += req.Demand
	} else {
		c.winDoneH++
		c.winDemandH += req.Demand
	}
	if pr.count {
		c.observeSLO(response)
		sample := metrics.Sample{
			Demand:   req.Demand,
			Response: response,
			Class:    req.Class.String(),
		}
		c.collector.Add(sample)
		if c.cfg.SampleHook != nil {
			c.cfg.SampleHook(pr.arrival, sample)
		}
	}
	c.completed++
	onDone := pr.onDone
	c.releasePending(pr)
	if onDone != nil {
		onDone(now)
	}
}

// runCacheHit serves a cached dynamic response at the master as a
// lightweight job. The sample records the actual (tiny) demand so the
// stretch metric stays consistent; the benefit appears in response time
// and in the load the cluster no longer carries.
func (c *Cluster) runCacheHit(req trace.Request, reqID int64, countSample bool, arrival float64, master int, onDone func(now float64)) {
	traceID := int64(0)
	if c.cfg.Tracer != nil {
		traceID = reqID
		c.cfg.Tracer.Emit(obs.Event{
			Kind: obs.KindDispatch, Req: reqID, Time: c.eng.Now(), Node: master,
		})
	}
	c.nodes[master].Submit(simos.Job{
		CPUTime:  req.Demand * req.CPUWeight,
		IOTime:   req.Demand * (1 - req.CPUWeight),
		MemPages: req.MemPages,
		TraceID:  traceID,
		Done: func(now float64) {
			if c.cfg.Tracer != nil {
				c.cfg.Tracer.Emit(obs.Event{
					Kind: obs.KindComplete, Req: reqID, Time: now,
					Node: master, Value: now - arrival,
				})
			}
			if countSample {
				c.observeSLO(now - arrival)
				sample := metrics.Sample{
					Demand:   req.Demand,
					Response: now - arrival,
					Class:    "cached",
				}
				c.collector.Add(sample)
				if c.cfg.SampleHook != nil {
					c.cfg.SampleHook(arrival, sample)
				}
			}
			c.completed++
			if onDone != nil {
				onDone(now)
			}
		},
	})
}

// autoRecruit reacts to the measured arrival rate: spares join the
// cluster above HighRate and leave below LowRate.
func (c *Cluster) autoRecruit() {
	ar := c.cfg.AutoRecruit
	rate := float64(c.winArrivals) / ar.Period
	c.winArrivals = 0
	switch {
	case !c.sparesActive && rate >= ar.HighRate:
		for _, id := range ar.Spares {
			c.applyAvailability(AvailabilityEvent{Node: id, At: c.eng.Now(), Available: true})
		}
		c.sparesActive = true
		c.recruitments++
	case c.sparesActive && rate <= ar.LowRate:
		for _, id := range ar.Spares {
			c.applyAvailability(AvailabilityEvent{Node: id, At: c.eng.Now(), Available: false})
		}
		c.sparesActive = false
		c.releases++
	}
}

// disciplinedOS maps a scheduling-discipline name onto the OS model:
// MLFQ is the paper's default multilevel feedback queue; RR collapses
// the ready queue to one level (pure quantum round-robin); FCFS
// additionally stretches the quantum past any realistic burst so a CPU
// chunk runs to completion once granted.
func disciplinedOS(base simos.Config, discipline string) (simos.Config, error) {
	switch discipline {
	case "", core.DisciplineMLFQ:
		return base, nil
	case core.DisciplineRR:
		base.ReadyLevels = 1
		return base, nil
	case core.DisciplineFCFS:
		base.ReadyLevels = 1
		base.CPUQuantum = 3600 // far beyond any burst: no preemption
		return base, nil
	}
	return base, fmt.Errorf("cluster: unknown scheduling discipline %q", discipline)
}

func isMaster(id int, masters []int) bool {
	for _, m := range masters {
		if m == id {
			return true
		}
	}
	return false
}

// Run replays the trace to completion and returns the result summary.
func (c *Cluster) Run(tr *trace.Trace) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	c.total = len(tr.Requests)
	c.completed = 0

	c.warmupUntil = 0
	if c.cfg.WarmupFraction > 0 && len(tr.Requests) > 0 {
		start := tr.Requests[0].Arrival
		c.warmupUntil = start + c.cfg.WarmupFraction*tr.Duration()
	}

	// Arrivals are typed events carrying the request's trace index, so
	// scheduling a whole trace allocates only pooled Events.
	c.trace = tr
	for i := range tr.Requests {
		c.eng.ScheduleCall(tr.Requests[i].Arrival, c.arrivalC, nil, float64(i))
	}
	for _, e := range c.cfg.Events {
		e := e
		c.eng.Schedule(e.At, func() { c.applyAvailability(e) })
	}

	c.startTickers()
	// Prime the policy so θ starts from the configured topology rather
	// than the controller's placeholder.
	c.policy.Tick(c.eng.Now(), &c.view)

	for c.completed < c.total {
		if !c.eng.Step() {
			return nil, fmt.Errorf("cluster: simulation drained with %d/%d requests outstanding", c.total-c.completed, c.total)
		}
	}
	c.stopTickers()
	return c.buildResult(), nil
}

// startTickers arms the periodic activities: load polling, policy
// adaptation, master re-planning, auto-recruitment.
func (c *Cluster) startTickers() {
	c.tickers = append(c.tickers, c.eng.Every(c.cfg.LoadRefresh, c.refreshLoad))
	c.tickers = append(c.tickers, c.eng.Every(c.cfg.PolicyTick, func() {
		c.policy.Tick(c.eng.Now(), &c.view)
		if c.shardMap != nil {
			c.sampleSummaryAge()
		}
	}))
	if c.shardMap != nil {
		c.tickers = append(c.tickers, c.eng.Every(c.gossipPeriod(), c.gossipShards))
	}
	if c.cfg.Adaptive != nil {
		c.tickers = append(c.tickers, c.eng.Every(c.cfg.Adaptive.Period, c.adapt))
	}
	if c.cfg.Autoscale != nil {
		c.tickers = append(c.tickers, c.eng.Every(c.cfg.Autoscale.Period, c.autoscaleTick))
	}
	if c.cfg.AutoRecruit != nil {
		c.tickers = append(c.tickers, c.eng.Every(c.cfg.AutoRecruit.Period, c.autoRecruit))
	}
}

// stopTickers cancels the periodic activities so the engine can drain.
func (c *Cluster) stopTickers() {
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
}

// buildResult snapshots the run's statistics.
func (c *Cluster) buildResult() *Result {
	res := &Result{
		Policy:           c.policy.Name(),
		Summary:          c.collector.Summarize(),
		TotalDynamics:    c.totalDyn,
		MasterDynamics:   c.masterDyn,
		RemoteDynamics:   c.remoteDyn,
		FinalMasters:     c.Masters(),
		MasterHistory:    append([]int(nil), c.history...),
		Failovers:        c.failovers,
		Shed:             c.shed,
		SimulatedSeconds: c.eng.Now(),
		Events:           c.eng.Fired(),
	}
	if c.cache != nil {
		res.CacheStats = c.cache.Stats()
	}
	res.Recruitments = c.recruitments
	res.Releases = c.releases
	res.Shards = c.shardStats()
	if c.sloN > 0 {
		res.SLOAttainment = float64(c.sloOK) / float64(c.sloN)
		res.SLOCount = c.sloN
	}
	c.accrueNodeSeconds(c.eng.Now())
	res.NodeHours = c.nodeSeconds / 3600
	if c.asStats != nil {
		st := *c.asStats
		st.FinalPowered = c.poweredCount
		res.Autoscale = &st
	}
	res.StretchFactor = res.Summary.StretchFactor
	res.NodeStats = make([]simos.Stats, len(c.nodes))
	res.NodeUtilization = make([]ResourceUtilization, len(c.nodes))
	for i, n := range c.nodes {
		res.NodeStats[i] = n.Stats()
		cpu, disk := n.BusyFractions()
		res.NodeUtilization[i] = ResourceUtilization{CPU: cpu, Disk: disk}
	}
	return res
}

// Simulate is the one-call convenience: build an engine and cluster,
// replay the trace, return the result.
func Simulate(cfg Config, policy core.Policy, tr *trace.Trace) (*Result, error) {
	eng := sim.NewEngine()
	c, err := New(eng, cfg, policy)
	if err != nil {
		return nil, err
	}
	return c.Run(tr)
}
