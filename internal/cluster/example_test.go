package cluster_test

import (
	"fmt"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/trace"
)

// Simulate a 8-node master/slave cluster against a synthetic KSU-like
// workload and report the headline metric.
func ExampleSimulate() {
	tr, err := trace.Generate(trace.GenConfig{
		Profile:  trace.KSU,
		Lambda:   300,
		Requests: 3000,
		MuH:      1200,
		R:        1.0 / 40,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	wt := core.SampleW(tr, 16) // off-line demand sampling
	cfg := cluster.DefaultConfig(8, 2)
	res, err := cluster.Simulate(cfg, core.NewMS(wt, 1), tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed: %d requests\n", res.Summary.Count)
	fmt.Printf("statics stayed on masters: %v\n", res.MasterDynamics < res.TotalDynamics)
	fmt.Printf("stretch factor is finite and ≥ 1: %v\n", res.StretchFactor >= 1)
	// Output:
	// completed: 3000 requests
	// statics stayed on masters: true
	// stretch factor is finite and ≥ 1: true
}

// A failure schedule exercises the fault-tolerance path: the crashed
// slave's in-flight work restarts elsewhere and nothing is lost.
func ExampleSimulate_failover() {
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.ADL, Lambda: 250, Requests: 2500,
		MuH: 1200, R: 1.0 / 40, Seed: 9,
	})
	if err != nil {
		panic(err)
	}
	cfg := cluster.DefaultConfig(6, 2)
	cfg.Events = []cluster.AvailabilityEvent{
		{Node: 5, At: 2.0, Available: false},
	}
	res, err := cluster.Simulate(cfg, core.NewMS(core.SampleW(tr, 16), 1), tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("all requests completed: %v\n", res.Summary.Count == 2500)
	// Output:
	// all requests completed: true
}
