package queuemodel

// Heterogeneous extension of the Section 3 analysis. The paper states
// that Theorem 1 "can also be extended for a heterogeneous system with
// non-uniform nodes"; this file carries that extension out for nodes
// that differ by a speed factor s_i (node i serves statics at s_i·μ_h
// and dynamics at s_i·μ_c).
//
// Routing model: the dispatcher is speed-aware and splits each class's
// traffic across the nodes serving it in proportion to their speeds, so
// every node in a tier has equal utilization — the fluid limit of
// weighted random routing, and the natural generalization of the
// homogeneous model's uniform split. Under processor sharing each class
// on node i then sees stretch 1/(s_i·(1−ρ_tier))… more precisely the
// response of a demand-d request on node i is d/(s_i(1−ρ_i)), so its
// stretch normalized to the *reference* demand is 1/(s_i(1−ρ_i)).
// Stretch is measured against the cluster's reference node speed 1.

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// HeteroParams describes a heterogeneous cluster.
type HeteroParams struct {
	// Speeds is the per-node speed factor (1.0 = reference node).
	Speeds []float64
	// LambdaH, LambdaC, MuH, MuC are as in Params; MuH/MuC are the
	// reference node's service rates.
	LambdaH, LambdaC float64
	MuH, MuC         float64
}

// Validate reports structural problems.
func (h HeteroParams) Validate() error {
	if len(h.Speeds) == 0 {
		return errors.New("queuemodel: heterogeneous cluster needs nodes")
	}
	for i, s := range h.Speeds {
		if s <= 0 {
			return fmt.Errorf("queuemodel: node %d speed %v must be positive", i, s)
		}
	}
	if h.LambdaH < 0 || h.LambdaC < 0 {
		return errors.New("queuemodel: negative arrival rate")
	}
	if h.MuH <= 0 || h.MuC <= 0 {
		return errors.New("queuemodel: service rates must be positive")
	}
	return nil
}

// totalSpeed sums the speed factors of the given node subset.
func (h HeteroParams) totalSpeed(nodes []int) float64 {
	total := 0.0
	for _, i := range nodes {
		total += h.Speeds[i]
	}
	return total
}

// tierStretch returns the arrival-weighted mean stretch of traffic
// offered to a tier of nodes under speed-proportional splitting.
// loadEq is the offered work in reference-node-equivalents
// (λ_h/μ_h + λ_c/μ_c for the traffic routed to the tier).
func (h HeteroParams) tierStretch(nodes []int, loadEq float64) float64 {
	s := h.totalSpeed(nodes)
	if s <= 0 {
		return math.Inf(1)
	}
	// Equal utilization across the tier: ρ = loadEq / totalSpeed.
	rho := loadEq / s
	if rho >= 1 {
		return math.Inf(1)
	}
	// A request routed to node i (probability s_i/s) has stretch
	// 1/(s_i(1−ρ)); the tier mean is Σ (s_i/s)·1/(s_i(1−ρ)) = n/(s(1−ρ)).
	n := float64(len(nodes))
	return n / (s * (1 - rho))
}

// HeteroFlatStretch returns the mean stretch of the heterogeneous flat
// architecture: both classes split speed-proportionally over all nodes.
func (h HeteroParams) HeteroFlatStretch() float64 {
	if err := h.Validate(); err != nil {
		return math.Inf(1)
	}
	all := make([]int, len(h.Speeds))
	for i := range all {
		all[i] = i
	}
	loadEq := h.LambdaH/h.MuH + h.LambdaC/h.MuC
	return h.tierStretch(all, loadEq)
}

// HeteroMSStretch returns the mean stretch of the heterogeneous M/S
// architecture with the given master set and dynamic-admission fraction
// theta. Statics and the admitted dynamics run on the masters; the rest
// of the dynamics run on the remaining nodes.
func (h HeteroParams) HeteroMSStretch(masters []int, theta float64) float64 {
	if err := h.Validate(); err != nil {
		return math.Inf(1)
	}
	if theta < 0 || theta > 1 {
		return math.Inf(1)
	}
	inMaster := make(map[int]bool, len(masters))
	for _, m := range masters {
		if m < 0 || m >= len(h.Speeds) || inMaster[m] {
			return math.Inf(1)
		}
		inMaster[m] = true
	}
	var slaves []int
	for i := range h.Speeds {
		if !inMaster[i] {
			slaves = append(slaves, i)
		}
	}
	lambda := h.LambdaH + h.LambdaC
	if lambda <= 0 {
		return 1
	}
	masterLoad := h.LambdaH/h.MuH + theta*h.LambdaC/h.MuC
	masterS := h.tierStretch(masters, masterLoad)
	if len(slaves) == 0 {
		if theta < 1 {
			return math.Inf(1)
		}
		return masterS
	}
	slaveS := h.tierStretch(slaves, (1-theta)*h.LambdaC/h.MuC)
	wMaster := (h.LambdaH + theta*h.LambdaC) / lambda
	return wMaster*masterS + (1-wMaster)*slaveS
}

// HeteroPlan is an optimized heterogeneous configuration.
type HeteroPlan struct {
	Masters []int
	Theta   float64
	Stretch float64
	Flat    float64
}

// OptimalHeteroPlan searches for the master set and θ minimizing the
// heterogeneous M/S stretch. Candidate master sets are prefixes of the
// speed-sorted node list, both ascending and descending — serving cheap
// statics from the slow nodes versus from the fast nodes — which covers
// the exchange argument's candidates; θ is optimized by golden-section
// per set.
func (h HeteroParams) OptimalHeteroPlan() (HeteroPlan, error) {
	if err := h.Validate(); err != nil {
		return HeteroPlan{}, err
	}
	n := len(h.Speeds)
	if n < 2 {
		return HeteroPlan{}, errors.New("queuemodel: need at least two nodes for M/S")
	}
	bySpeed := make([]int, n)
	for i := range bySpeed {
		bySpeed[i] = i
	}
	sort.Slice(bySpeed, func(a, b int) bool { return h.Speeds[bySpeed[a]] < h.Speeds[bySpeed[b]] })

	best := HeteroPlan{Stretch: math.Inf(1), Flat: h.HeteroFlatStretch()}
	consider := func(masters []int) {
		theta := h.optimalHeteroTheta(masters)
		if s := h.HeteroMSStretch(masters, theta); s < best.Stretch {
			best = HeteroPlan{
				Masters: append([]int(nil), masters...),
				Theta:   theta,
				Stretch: s,
				Flat:    best.Flat,
			}
		}
	}
	for m := 1; m < n; m++ {
		consider(bySpeed[:m])   // slowest m nodes as masters
		consider(bySpeed[n-m:]) // fastest m nodes as masters
	}
	if math.IsInf(best.Stretch, 1) {
		return HeteroPlan{}, errors.New("queuemodel: no stable heterogeneous M/S configuration")
	}
	return best, nil
}

// feasibleThetaRange returns the open interval of θ keeping both tiers
// stable: the slaves need (1−θ)λ_c/μ_c < S_slaves and the masters need
// λ_h/μ_h + θλ_c/μ_c < S_masters, where S is a tier's total speed.
func (h HeteroParams) feasibleThetaRange(masters []int) (lo, hi float64, ok bool) {
	sMaster := h.totalSpeed(masters)
	sAll := 0.0
	for _, s := range h.Speeds {
		sAll += s
	}
	sSlave := sAll - sMaster
	dynEq := h.LambdaC / h.MuC
	statEq := h.LambdaH / h.MuH
	lo, hi = 0.0, 1.0
	if dynEq > 0 {
		if l := 1 - sSlave/dynEq; l > lo {
			lo = l
		}
		if hh := (sMaster - statEq) / dynEq; hh < hi {
			hi = hh
		}
	} else if statEq >= sMaster {
		return 0, 0, false
	}
	if lo >= hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// optimalHeteroTheta minimizes HeteroMSStretch(masters, ·) over the
// feasible θ interval (golden section over an infinite infeasible
// plateau would collapse to the wrong side).
func (h HeteroParams) optimalHeteroTheta(masters []int) float64 {
	const phi = 0.6180339887498949
	lo, hi, ok := h.feasibleThetaRange(masters)
	if !ok {
		return 0
	}
	// Nudge inside the open interval to avoid the ρ=1 boundary.
	span := hi - lo
	lo += 1e-6 * span
	hi -= 1e-6 * span
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1 := h.HeteroMSStretch(masters, x1)
	f2 := h.HeteroMSStretch(masters, x2)
	for i := 0; i < 80 && hi-lo > 1e-9; i++ {
		if f1 <= f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = h.HeteroMSStretch(masters, x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = h.HeteroMSStretch(masters, x2)
		}
	}
	return (lo + hi) / 2
}

// Improvement returns the predicted percentage improvement over flat.
func (p HeteroPlan) Improvement() float64 {
	if p.Stretch <= 0 || math.IsInf(p.Flat, 1) {
		return 0
	}
	return (p.Flat/p.Stretch - 1) * 100
}

// Uniform returns the HeteroParams equivalent of a homogeneous Params,
// for cross-checking the two models against each other.
func Uniform(p Params) HeteroParams {
	speeds := make([]float64, p.P)
	for i := range speeds {
		speeds[i] = 1
	}
	return HeteroParams{
		Speeds:  speeds,
		LambdaH: p.LambdaH, LambdaC: p.LambdaC,
		MuH: p.MuH, MuC: p.MuC,
	}
}
