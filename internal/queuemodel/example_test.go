package queuemodel_test

import (
	"fmt"

	"msweb/internal/queuemodel"
)

// Size the master tier of a 32-node cluster serving 1000 req/s with a
// 3:7 dynamic:static mix and CGI forty times as expensive as a static
// fetch — the paper's running configuration.
func ExampleParams_OptimalPlan() {
	params := queuemodel.NewParams(32, 1000, 3.0/7.0, 1200, 1.0/40)
	plan, err := params.OptimalPlan()
	if err != nil {
		panic(err)
	}
	fmt.Printf("masters: %d\n", plan.M)
	fmt.Printf("reservation cap θ₂: %.3f\n", plan.Theta2)
	fmt.Printf("predicted improvement over flat: %.0f%%\n", plan.Improvement())
	// Output:
	// masters: 6
	// reservation cap θ₂: 0.140
	// predicted improvement over flat: 18%
}

// The balanced θ₂ depends only on m/p, r and a — the property that lets
// the on-line reservation controller compute it from observable ratios.
func ExampleParams_BalancedTheta() {
	small := queuemodel.NewParams(32, 1000, 0.4, 1200, 1.0/40)
	big := queuemodel.NewParams(128, 52000, 0.4, 31200, 1.0/40) // scaled cluster
	fmt.Printf("θ₂ small: %.4f\n", small.BalancedTheta(8))
	fmt.Printf("θ₂ big:   %.4f\n", big.BalancedTheta(32))
	// Output:
	// θ₂ small: 0.2031
	// θ₂ big:   0.2031
}

// The heterogeneous extension picks which physical nodes become masters.
func ExampleHeteroParams_OptimalHeteroPlan() {
	h := queuemodel.HeteroParams{
		Speeds:  []float64{1, 1, 1, 1, 2, 2, 2, 2}, // four fast slaves
		LambdaH: 500, LambdaC: 200,
		MuH: 1200, MuC: 30,
	}
	plan, err := h.OptimalHeteroPlan()
	if err != nil {
		panic(err)
	}
	fmt.Printf("masters: %d nodes\n", len(plan.Masters))
	fmt.Printf("M/S beats flat: %v\n", plan.Stretch < plan.Flat)
	// Output:
	// masters: 1 nodes
	// M/S beats flat: true
}
