package queuemodel

import (
	"math"
	"testing"
	"testing/quick"
)

// Cross-cutting property tests of the analytic model.

// S_M and S_F grow monotonically with offered load.
func TestStretchMonotoneInLoad(t *testing.T) {
	prev := 0.0
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := NewParams(32, 1, 0.4, 1200, 1.0/40)
		lambda := load / p.FlatUtilization()
		p = NewParams(32, lambda, 0.4, 1200, 1.0/40)
		sf := p.FlatStretch()
		if sf <= prev {
			t.Fatalf("flat stretch not monotone: %v after %v at load %v", sf, prev, load)
		}
		prev = sf
	}
}

// The optimal plan's improvement grows with load (the architecture
// matters more when resources are scarce).
func TestPlanImprovementGrowsWithLoad(t *testing.T) {
	prev := -1.0
	for _, load := range []float64{0.3, 0.5, 0.7, 0.85} {
		p := NewParams(32, 1, 0.4, 1200, 1.0/40)
		lambda := load / p.FlatUtilization()
		p = NewParams(32, lambda, 0.4, 1200, 1.0/40)
		plan, err := p.OptimalPlan()
		if err != nil {
			t.Fatal(err)
		}
		if plan.Improvement() < prev {
			t.Fatalf("improvement fell to %v at load %v (was %v)", plan.Improvement(), load, prev)
		}
		prev = plan.Improvement()
	}
}

// The optimal master count shrinks as CGI work grows (more capacity must
// serve the dynamic tier).
func TestOptimalMastersShrinkWithCGIWeight(t *testing.T) {
	prev := 33
	for _, invR := range []float64{10, 20, 40, 80, 160} {
		r := 1 / invR
		p := NewParams(32, 1, 0.4, 1200, r)
		lambda := 0.6 / p.FlatUtilization()
		p = NewParams(32, lambda, 0.4, 1200, r)
		plan, err := p.OptimalPlan()
		if err != nil {
			t.Fatal(err)
		}
		if plan.M > prev {
			t.Fatalf("masters grew to %d at 1/r=%v (was %d)", plan.M, invR, prev)
		}
		prev = plan.M
	}
}

// Quadratic coefficients: g(θ) evaluated through the returned A, B, C
// must match a direct evaluation of the cleared inequality at arbitrary
// interior points.
func TestQuadraticEvaluationProperty(t *testing.T) {
	p := paperParams(0.4, 1.0/40.0)
	f := func(mRaw, thetaRaw uint8) bool {
		m := 2 + int(mRaw)%29
		theta := float64(thetaRaw) / 255
		A, B, C := p.Quadratic(m)
		got := A*theta*theta + B*theta + C

		a := p.A()
		rho1 := p.MasterUtilization(m, theta)
		rho2 := p.SlaveUtilization(m, theta)
		rhoF := p.FlatUtilization()
		want := (1+a*theta)*(1-rho2)*(1-rhoF) +
			a*(1-theta)*(1-rho1)*(1-rhoF) -
			(1+a)*(1-rho1)*(1-rho2)
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FCFS dominates PS in mean stretch for mixed traffic on the whole
// studied grid (service variability hurts FIFO queues).
func TestFCFSAlwaysWorseOnGrid(t *testing.T) {
	for _, a := range []float64{0.25, 0.43, 0.67} {
		for _, invR := range []float64{10, 20, 40, 80, 160} {
			for _, load := range []float64{0.3, 0.6, 0.8} {
				p := NewParams(32, 1, a, 1200, 1/invR)
				lambda := load / p.FlatUtilization()
				p = NewParams(32, lambda, a, 1200, 1/invR)
				ps := p.FlatStretch()
				fcfs := p.FCFSFlatStretch()
				if fcfs < ps-1e-9 {
					t.Fatalf("a=%v 1/r=%v load=%v: FCFS %v below PS %v", a, invR, load, fcfs, ps)
				}
			}
		}
	}
}

// Theta2 stays within [0, 1] for every feasible plan on the grid.
func TestPlanThetaRangesOnGrid(t *testing.T) {
	for _, a := range []float64{0.126, 0.41, 0.795} {
		for _, invR := range []float64{20, 40, 80, 160} {
			p := NewParams(32, 1, a, 1200, 1/invR)
			lambda := 0.65 / p.FlatUtilization()
			p = NewParams(32, lambda, a, 1200, 1/invR)
			plan, err := p.OptimalPlan()
			if err != nil {
				t.Fatalf("a=%v 1/r=%v: %v", a, invR, err)
			}
			if plan.Theta < 0 || plan.Theta > 1 {
				t.Fatalf("θ=%v out of range", plan.Theta)
			}
			if plan.Theta2 < 0 || plan.Theta2 > 1 {
				t.Fatalf("θ₂=%v out of range at a=%v 1/r=%v m=%d", plan.Theta2, a, invR, plan.M)
			}
		}
	}
}
