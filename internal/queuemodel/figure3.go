package queuemodel

// Figure 3 of the paper plots, for λ = 1000 req/s, p = 32 nodes and
// μ_h = 1200 req/s, the percentage improvement of the optimized M/S model
// over (a) the flat model and (b) the optimized M/S′ model, as a function
// of 1/r for three arrival mixes a = 2/8, 3/7 and 4/6 (the paper labels
// the curves by the λ_c:λ_h split).

// Fig3Point is one point on a Figure 3 curve.
type Fig3Point struct {
	InvR            float64 // 1/r, the x-axis
	MSStretch       float64
	FlatStretch     float64
	MSPrimeStretch  float64
	OverFlatPct     float64 // (S_F / S_M − 1) × 100, Figure 3(a)
	OverMSPrimePct  float64 // (S_M′ / S_M − 1) × 100, Figure 3(b)
	Masters         int     // optimal m chosen by Theorem 1
	Theta           float64 // heuristic θ_m
	MSPrimeDynNodes int     // optimal k for M/S′
}

// Fig3Curve is one curve of Figure 3, labelled by its arrival mix.
type Fig3Curve struct {
	Label  string // e.g. "a=2/8"
	A      float64
	Points []Fig3Point
}

// Fig3Config parameterizes the Figure 3 sweep; DefaultFig3Config matches
// the paper.
type Fig3Config struct {
	Lambda float64
	P      int
	MuH    float64
	As     []float64 // arrival mixes
	ALabel []string  // labels for the mixes
	InvRs  []float64 // 1/r sample points
}

// DefaultFig3Config returns the paper's Figure 3 parameters: λ=1000,
// p=32, μ_h=1200, a ∈ {2/8, 3/7, 4/6}, 1/r ∈ [10, 80].
func DefaultFig3Config() Fig3Config {
	invRs := make([]float64, 0, 15)
	for ir := 10.0; ir <= 80.0; ir += 5 {
		invRs = append(invRs, ir)
	}
	return Fig3Config{
		Lambda: 1000,
		P:      32,
		MuH:    1200,
		As:     []float64{2.0 / 8.0, 3.0 / 7.0, 4.0 / 6.0},
		ALabel: []string{"a=2/8", "a=3/7", "a=4/6"},
		InvRs:  invRs,
	}
}

// Figure3 computes the curves of Figure 3(a) and (b). Points where any
// model saturates are skipped, mirroring the paper's plotted domain.
func Figure3(cfg Fig3Config) []Fig3Curve {
	curves := make([]Fig3Curve, 0, len(cfg.As))
	for i, a := range cfg.As {
		label := ""
		if i < len(cfg.ALabel) {
			label = cfg.ALabel[i]
		}
		curve := Fig3Curve{Label: label, A: a}
		for _, invR := range cfg.InvRs {
			if invR <= 0 {
				continue
			}
			params := NewParams(cfg.P, cfg.Lambda, a, cfg.MuH, 1/invR)
			plan, err := params.OptimalPlan()
			if err != nil {
				continue
			}
			prime, err := params.MSPrimeFixedPlan()
			if err != nil {
				continue
			}
			pt := Fig3Point{
				InvR:            invR,
				MSStretch:       plan.Stretch,
				FlatStretch:     plan.Flat,
				MSPrimeStretch:  prime.Stretch,
				OverFlatPct:     (plan.Flat/plan.Stretch - 1) * 100,
				OverMSPrimePct:  (prime.Stretch/plan.Stretch - 1) * 100,
				Masters:         plan.M,
				Theta:           plan.Theta,
				MSPrimeDynNodes: prime.K,
			}
			curve.Points = append(curve.Points, pt)
		}
		curves = append(curves, curve)
	}
	return curves
}
