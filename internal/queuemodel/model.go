// Package queuemodel implements the Section 3 analytic model of the paper:
// multi-class open queueing networks for the flat and master/slave (M/S)
// web-cluster architectures, the quadratic condition under which M/S
// outperforms flat, the optimal fraction θ of dynamic requests to process
// at masters, and the numeric search for the optimal number of masters m
// (Theorem 1). It also models the M/S′ alternative in which dynamic
// requests are pinned to a fixed subset of nodes while static requests are
// spread over all nodes.
//
// Model recap. Two request classes arrive as Poisson streams: static
// ("h", for HTML) at rate λ_h and dynamic content ("c", for CGI) at rate
// λ_c. Per-node service rates are μ_h and μ_c. Each node is an M/M/1
// processor-sharing station, so every class on a node with utilization ρ
// experiences stretch 1/(1−ρ). Define
//
//	a = λ_c/λ_h   (arrival-rate ratio)
//	r = μ_c/μ_h   (service-rate ratio; r ≪ 1 for CGI-heavy sites)
//
// Flat: each of p nodes receives λ/p of both classes;
// ρ_F = λ_h/(pμ_h) + λ_c/(pμ_c), S_F = 1/(1−ρ_F).
//
// M/S: m masters receive all static traffic plus a fraction θ of the
// dynamic traffic; p−m slaves share the remaining (1−θ) of the dynamic
// traffic. The mean stretch is the arrival-weighted mean over the three
// flows.
package queuemodel

import (
	"errors"
	"fmt"
	"math"
)

// Params describes one analytic configuration.
type Params struct {
	P       int     // total number of nodes in the cluster
	LambdaH float64 // arrival rate of static requests (req/s)
	LambdaC float64 // arrival rate of dynamic requests (req/s)
	MuH     float64 // per-node service rate for static requests (req/s)
	MuC     float64 // per-node service rate for dynamic requests (req/s)
}

// NewParams builds a Params from the paper's preferred parameterization:
// total arrival rate λ, arrival ratio a = λ_c/λ_h, static service rate
// μ_h and service ratio r = μ_c/μ_h.
func NewParams(p int, lambda, a, muH, r float64) Params {
	lambdaH := lambda / (1 + a)
	return Params{
		P:       p,
		LambdaH: lambdaH,
		LambdaC: lambda - lambdaH,
		MuH:     muH,
		MuC:     r * muH,
	}
}

// A returns the arrival ratio a = λ_c/λ_h.
func (p Params) A() float64 {
	if p.LambdaH == 0 {
		return math.Inf(1)
	}
	return p.LambdaC / p.LambdaH
}

// R returns the service ratio r = μ_c/μ_h.
func (p Params) R() float64 {
	if p.MuH == 0 {
		return 0
	}
	return p.MuC / p.MuH
}

// Lambda returns the total arrival rate.
func (p Params) Lambda() float64 { return p.LambdaH + p.LambdaC }

// Validate reports structural problems with the parameters.
func (p Params) Validate() error {
	switch {
	case p.P < 1:
		return errors.New("queuemodel: cluster must have at least one node")
	case p.LambdaH < 0 || p.LambdaC < 0:
		return errors.New("queuemodel: negative arrival rate")
	case p.MuH <= 0 || p.MuC <= 0:
		return errors.New("queuemodel: service rates must be positive")
	}
	return nil
}

// FlatUtilization returns ρ_F, the per-node utilization in the flat
// architecture.
func (p Params) FlatUtilization() float64 {
	return p.LambdaH/(float64(p.P)*p.MuH) + p.LambdaC/(float64(p.P)*p.MuC)
}

// FlatStable reports whether the flat system is stable (ρ_F < 1).
func (p Params) FlatStable() bool { return p.FlatUtilization() < 1 }

// FlatStretch returns S_F = 1/(1−ρ_F), the stretch factor of the flat
// architecture (both classes see the same stretch under processor
// sharing). It returns +Inf when the system is saturated.
func (p Params) FlatStretch() float64 {
	rho := p.FlatUtilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - rho)
}

// MasterUtilization returns ρ_1(θ), the utilization of each of the m
// master nodes when a fraction theta of dynamic requests stays at masters.
func (p Params) MasterUtilization(m int, theta float64) float64 {
	return p.LambdaH/(float64(m)*p.MuH) + theta*p.LambdaC/(float64(m)*p.MuC)
}

// SlaveUtilization returns ρ_2(θ), the utilization of each of the p−m
// slave nodes. With no slaves it returns 0 when θ = 1 (no traffic routed
// to the empty tier) and +Inf otherwise.
func (p Params) SlaveUtilization(m int, theta float64) float64 {
	slaves := p.P - m
	if slaves <= 0 {
		if theta >= 1 {
			return 0
		}
		return math.Inf(1)
	}
	return (1 - theta) * p.LambdaC / (float64(slaves) * p.MuC)
}

// MSStretchParts returns the three component stretch factors of the M/S
// system: S_{M,h} (= S_{M,c1}, statics and master-resident dynamics share
// master nodes) and S_{M,c2} (dynamics on slaves). Saturated tiers report
// +Inf.
func (p Params) MSStretchParts(m int, theta float64) (masterS, slaveS float64) {
	rho1 := p.MasterUtilization(m, theta)
	rho2 := p.SlaveUtilization(m, theta)
	if rho1 >= 1 {
		masterS = math.Inf(1)
	} else {
		masterS = 1 / (1 - rho1)
	}
	if rho2 >= 1 {
		slaveS = math.Inf(1)
	} else {
		slaveS = 1 / (1 - rho2)
	}
	return masterS, slaveS
}

// MSStretch returns S_M(m, θ), the arrival-weighted mean stretch of the
// M/S architecture:
//
//	S_M = [(1+aθ)·S_{M,h} + a(1−θ)·S_{M,c2}] / (1+a)
func (p Params) MSStretch(m int, theta float64) float64 {
	a := p.A()
	masterS, slaveS := p.MSStretchParts(m, theta)
	if math.IsInf(masterS, 1) || (theta < 1 && math.IsInf(slaveS, 1)) {
		return math.Inf(1)
	}
	if theta >= 1 {
		// All dynamics at masters; slave term has zero weight.
		return ((1 + a*theta) * masterS) / (1 + a)
	}
	return ((1+a*theta)*masterS + a*(1-theta)*slaveS) / (1 + a)
}

// BalancedTheta returns θ₂ = (m/p)(1 + r/a) − r/a, the θ at which master
// and slave utilizations both equal the flat utilization, making
// S_M = S_F exactly. It is the upper root of the quadratic in Theorem 1
// and — crucially for the on-line reservation scheme of Section 4 —
// depends only on m/p, r and a.
func (p Params) BalancedTheta(m int) float64 {
	a := p.A()
	r := p.R()
	if a == 0 || math.IsInf(a, 1) {
		// Degenerate mixes: no dynamic traffic (a=0) means θ is
		// irrelevant; no static traffic (a=∞) balances at θ = m/p.
		if math.IsInf(a, 1) {
			return float64(m) / float64(p.P)
		}
		return 0
	}
	mp := float64(m) / float64(p.P)
	return mp*(1+r/a) - r/a
}

// Quadratic returns the coefficients A, B, C of the polynomial
// Aθ² + Bθ + C whose non-positive range is exactly {θ : S_M(θ) ≤ S_F},
// assuming all three stations remain stable. The scanned paper's closed
// forms are OCR-damaged, so the coefficients are recovered exactly by
// clearing denominators of the rational inequality and evaluating the
// resulting polynomial at θ ∈ {0, 1, −1}:
//
//	g(θ) = (1+aθ)(1−ρ₂)(1−ρ_F) + a(1−θ)(1−ρ₁)(1−ρ_F) − (1+a)(1−ρ₁)(1−ρ₂)
//
// g is quadratic in θ because ρ₁ and ρ₂ are affine in θ, and g(θ) ≤ 0 ⟺
// S_M(θ) ≤ S_F whenever 1−ρ₁ > 0 and 1−ρ₂ > 0.
func (p Params) Quadratic(m int) (A, B, C float64) {
	g := func(theta float64) float64 {
		a := p.A()
		rho1 := p.MasterUtilization(m, theta)
		rho2 := p.SlaveUtilization(m, theta)
		rhoF := p.FlatUtilization()
		return (1+a*theta)*(1-rho2)*(1-rhoF) +
			a*(1-theta)*(1-rho1)*(1-rhoF) -
			(1+a)*(1-rho1)*(1-rho2)
	}
	c := g(0)
	gp := g(1)  // A + B + C
	gm := g(-1) // A − B + C
	A = (gp+gm)/2 - c
	B = (gp - gm) / 2
	C = c
	return A, B, C
}

// ThetaRange returns the interval [θ₁, θ₂] over which S_M(θ) ≤ S_F, from
// the roots of the Theorem 1 quadratic. ok is false when the quadratic
// has no real roots (M/S never beats flat for this m) or when the slave
// tier is absent.
func (p Params) ThetaRange(m int) (theta1, theta2 float64, ok bool) {
	if m <= 0 || m >= p.P {
		return 0, 0, false
	}
	A, B, C := p.Quadratic(m)
	if A == 0 {
		if B == 0 {
			return 0, 0, false
		}
		root := -C / B
		return root, root, true
	}
	disc := B*B - 4*A*C
	if disc < 0 {
		return 0, 0, false
	}
	sq := math.Sqrt(disc)
	r1 := (-B - sq) / (2 * A)
	r2 := (-B + sq) / (2 * A)
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return r1, r2, true
}

// OptimalTheta returns the paper's heuristic optimal θ for a given m:
// the midpoint of the two quadratic roots, clamped to [0, 1]:
// θ_m = max((θ₁+θ₂)/2, 0).
func (p Params) OptimalTheta(m int) (float64, bool) {
	t1, t2, ok := p.ThetaRange(m)
	if !ok {
		return 0, false
	}
	theta := (t1 + t2) / 2
	if theta < 0 {
		theta = 0
	}
	if theta > 1 {
		theta = 1
	}
	return theta, true
}

// ExactOptimalTheta minimizes S_M(m, ·) over θ ∈ [0, 1] by golden-section
// search. The paper uses the quadratic midpoint as a closed-form
// surrogate; the exact optimum is exposed for the ablation benchmarks.
func (p Params) ExactOptimalTheta(m int) float64 {
	const phi = 0.6180339887498949
	lo, hi := 0.0, 1.0
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1 := p.MSStretch(m, x1)
	f2 := p.MSStretch(m, x2)
	for i := 0; i < 100 && hi-lo > 1e-10; i++ {
		if f1 <= f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = p.MSStretch(m, x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = p.MSStretch(m, x2)
		}
	}
	return (lo + hi) / 2
}

// Plan is the output of Theorem 1's numeric minimization: the number of
// masters and θ that minimize the M/S stretch factor.
type Plan struct {
	M       int     // chosen number of master nodes
	Theta   float64 // paper-heuristic θ_m for that m
	Theta2  float64 // upper root θ₂ — the reservation cap used by §4
	Stretch float64 // predicted S_M at (M, Theta)
	Flat    float64 // predicted S_F for comparison
}

// Improvement returns the predicted percentage improvement of the plan
// over the flat architecture, (S_F/S_M − 1)·100.
func (pl Plan) Improvement() float64 {
	if pl.Stretch <= 0 {
		return 0
	}
	return (pl.Flat/pl.Stretch - 1) * 100
}

// OptimalPlan scans m = 1..p−1, computes the heuristic θ_m for each, and
// returns the (m, θ) pair minimizing the predicted M/S stretch — the
// numeric minimization of Theorem 1. The error reports infeasible
// parameters (unstable flat system or no beneficial configuration).
func (p Params) OptimalPlan() (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if !p.FlatStable() {
		return Plan{}, fmt.Errorf("queuemodel: offered load %.3f saturates the cluster", p.FlatUtilization())
	}
	best := Plan{M: -1, Stretch: math.Inf(1), Flat: p.FlatStretch()}
	for m := 1; m < p.P; m++ {
		theta, ok := p.OptimalTheta(m)
		if !ok {
			continue
		}
		s := p.MSStretch(m, theta)
		if s < best.Stretch {
			t2 := p.BalancedTheta(m)
			best = Plan{M: m, Theta: theta, Theta2: t2, Stretch: s, Flat: best.Flat}
		}
	}
	if best.M < 0 {
		return Plan{}, errors.New("queuemodel: no master/slave split outperforms flat")
	}
	return best, nil
}
