package queuemodel

import (
	"errors"
	"math"
)

// The M/S′ alternative (Section 3): "fix the assignment of dynamic content
// requests to a few nodes but distribute static-content requests to all
// nodes." The scanned paper's M/S′ stretch-factor derivation is destroyed
// by OCR, so this file implements the two recoverable readings and
// documents why the one used for Figure 3(b) was chosen.
//
// Reading 1 — shared nodes (the literal sentence): dynamic requests are
// pinned to k nodes; static requests are spread uniformly over all p
// nodes, so the k dynamic nodes also carry a static share. Under the
// processor-sharing stretch model this scheme can NEVER outperform flat:
// the per-node utilizations average to ρ_F over the p equally-weighted
// static destinations, and x ↦ 1/(1−x) is convex, so by Jensen's
// inequality the statics' mean stretch is ≥ 1/(1−ρ_F), while every
// dynamic request runs on a node with utilization ≥ ρ_F. Its optimum
// degenerates to k = p, i.e. the flat system — contradicting the paper's
// claim that M/S′ beats flat. It is exposed as MSPrimeSharedStretch for
// study but not used in the reproduction of Figure 3(b).
//
// Reading 2 — dedicated tiers with a fixed, capacity-proportional split
// (used for Figure 3b): "fix the assignment" is read as configuring the
// dynamic tier once from measured load shares without the queueing
// optimization of Theorem 1. k dynamic-only nodes are sized proportional
// to the dynamic class's share of the total offered work,
//
//	m′ = ⌈p·ρ_h/(ρ_h+ρ_c)⌉ static nodes, k = p − m′ dynamic nodes,
//
// where ρ_h = λ_h/μ_h and ρ_c = λ_c/μ_c are the class loads in
// node-equivalents. This is the natural configuration an administrator
// derives from utilization measurements alone; it equalizes tier
// utilizations, whereas Theorem 1 shows the stretch-optimal split
// deliberately over-provisions the static (master) tier because static
// requests dominate the per-request average. The resulting gap between
// M/S and M/S′ is zero at the extremes and peaks mid-range — the shape of
// the paper's Figure 3(b) (paper max ≈ 18%; this model reaches ~20–38%
// at integer boundaries, see EXPERIMENTS.md).

// MSPrimeSharedUtilizations returns the utilization of a dynamic-serving
// node and of a static-only node under the shared (literal) M/S′ reading
// with k dynamic nodes.
func (p Params) MSPrimeSharedUtilizations(k int) (dynNode, staticNode float64) {
	staticShare := p.LambdaH / (float64(p.P) * p.MuH)
	if k <= 0 {
		return math.Inf(1), staticShare
	}
	return staticShare + p.LambdaC/(float64(k)*p.MuC), staticShare
}

// MSPrimeSharedStretch returns the arrival-weighted mean stretch of the
// shared (literal) M/S′ reading with k dynamic nodes. Static requests
// land on a dynamic node with probability k/p.
func (p Params) MSPrimeSharedStretch(k int) float64 {
	rhoDyn, rhoStatic := p.MSPrimeSharedUtilizations(k)
	if rhoDyn >= 1 || rhoStatic >= 1 {
		return math.Inf(1)
	}
	sDyn := 1 / (1 - rhoDyn)
	sStatic := 1 / (1 - rhoStatic)
	kp := float64(k) / float64(p.P)
	a := p.A()
	sH := kp*sDyn + (1-kp)*sStatic
	return (sH + a*sDyn) / (1 + a)
}

// CapacityProportionalMasters returns m′, the static-tier size of the
// fixed M/S′ configuration: node count proportional to the static class's
// share of total offered work, rounded up, clamped to [1, p−1].
func (p Params) CapacityProportionalMasters() int {
	rhoH := p.LambdaH / p.MuH
	rhoC := p.LambdaC / p.MuC
	total := rhoH + rhoC
	m := 1
	if total > 0 {
		m = int(math.Ceil(float64(p.P) * rhoH / total))
	}
	if m < 1 {
		m = 1
	}
	if m > p.P-1 {
		m = p.P - 1
	}
	return m
}

// MSPrimeStretch returns the mean stretch of the dedicated-tier M/S′
// scheme with k dynamic nodes: statics on the p−k static nodes, dynamics
// on the k dynamic nodes, no cross-traffic. Structurally this is the M/S
// system with m = p−k masters and θ = 0.
func (p Params) MSPrimeStretch(k int) float64 {
	if k < 1 || k > p.P-1 {
		return math.Inf(1)
	}
	return p.MSStretch(p.P-k, 0)
}

// MSPrimePlan is the fixed M/S′ configuration used in Figure 3(b).
type MSPrimePlan struct {
	K       int     // number of dedicated dynamic nodes (= p − m′)
	Stretch float64 // predicted mean stretch
}

// MSPrimeFixedPlan returns the capacity-proportional M/S′ configuration
// and its predicted stretch. The error reports saturation: when even the
// proportional split cannot stabilize a tier, the scheme has no finite
// stretch.
func (p Params) MSPrimeFixedPlan() (MSPrimePlan, error) {
	if err := p.Validate(); err != nil {
		return MSPrimePlan{}, err
	}
	if p.P < 2 {
		return MSPrimePlan{}, errors.New("queuemodel: M/S' requires at least two nodes")
	}
	m := p.CapacityProportionalMasters()
	k := p.P - m
	s := p.MSPrimeStretch(k)
	if math.IsInf(s, 1) {
		return MSPrimePlan{}, errors.New("queuemodel: M/S' capacity-proportional split is saturated")
	}
	return MSPrimePlan{K: k, Stretch: s}, nil
}

// OptimalMSPrimePlan scans k = 1..p−1 and returns the k minimizing the
// dedicated-tier M/S′ stretch. With a free k this coincides with the
// optimal M/S plan (θ* = 0 in the studied regime); it exists for ablation
// comparisons against the fixed plan.
func (p Params) OptimalMSPrimePlan() (MSPrimePlan, error) {
	if err := p.Validate(); err != nil {
		return MSPrimePlan{}, err
	}
	best := MSPrimePlan{K: -1, Stretch: math.Inf(1)}
	for k := 1; k <= p.P-1; k++ {
		if s := p.MSPrimeStretch(k); s < best.Stretch {
			best = MSPrimePlan{K: k, Stretch: s}
		}
	}
	if best.K < 0 || math.IsInf(best.Stretch, 1) {
		return MSPrimePlan{}, errors.New("queuemodel: M/S' saturated for every k")
	}
	return best, nil
}
