package queuemodel

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func paperParams(a, r float64) Params {
	return NewParams(32, 1000, a, 1200, r)
}

func TestNewParamsRoundTrip(t *testing.T) {
	p := NewParams(32, 1000, 0.25, 1200, 0.05)
	if !approx(p.A(), 0.25, 1e-12) {
		t.Fatalf("A() = %v, want 0.25", p.A())
	}
	if !approx(p.R(), 0.05, 1e-12) {
		t.Fatalf("R() = %v, want 0.05", p.R())
	}
	if !approx(p.Lambda(), 1000, 1e-9) {
		t.Fatalf("Lambda() = %v, want 1000", p.Lambda())
	}
	if !approx(p.LambdaH+p.LambdaC, 1000, 1e-9) {
		t.Fatalf("rates do not sum: %v + %v", p.LambdaH, p.LambdaC)
	}
}

func TestValidate(t *testing.T) {
	good := paperParams(0.25, 0.05)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := good
	bad.P = 0
	if bad.Validate() == nil {
		t.Fatal("p=0 accepted")
	}
	bad = good
	bad.MuC = 0
	if bad.Validate() == nil {
		t.Fatal("mu_c=0 accepted")
	}
	bad = good
	bad.LambdaH = -1
	if bad.Validate() == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestFlatUtilizationAndStretch(t *testing.T) {
	// Hand-computed: p=2, λ_h=100, λ_c=10, μ_h=200, μ_c=20.
	p := Params{P: 2, LambdaH: 100, LambdaC: 10, MuH: 200, MuC: 20}
	// ρ_F = 100/(2·200) + 10/(2·20) = 0.25 + 0.25 = 0.5
	if got := p.FlatUtilization(); !approx(got, 0.5, 1e-12) {
		t.Fatalf("FlatUtilization = %v, want 0.5", got)
	}
	if got := p.FlatStretch(); !approx(got, 2, 1e-12) {
		t.Fatalf("FlatStretch = %v, want 2", got)
	}
	if !p.FlatStable() {
		t.Fatal("stable system reported unstable")
	}
}

func TestFlatSaturation(t *testing.T) {
	p := Params{P: 1, LambdaH: 300, LambdaC: 0, MuH: 200, MuC: 20}
	if p.FlatStable() {
		t.Fatal("saturated system reported stable")
	}
	if !math.IsInf(p.FlatStretch(), 1) {
		t.Fatalf("saturated stretch = %v, want +Inf", p.FlatStretch())
	}
}

func TestMasterSlaveUtilizations(t *testing.T) {
	p := Params{P: 4, LambdaH: 100, LambdaC: 40, MuH: 200, MuC: 20}
	// m=2, θ=0.5: ρ1 = 100/(2·200) + 0.5·40/(2·20) = 0.25 + 0.5 = 0.75
	if got := p.MasterUtilization(2, 0.5); !approx(got, 0.75, 1e-12) {
		t.Fatalf("MasterUtilization = %v, want 0.75", got)
	}
	// ρ2 = 0.5·40/(2·20) = 0.5
	if got := p.SlaveUtilization(2, 0.5); !approx(got, 0.5, 1e-12) {
		t.Fatalf("SlaveUtilization = %v, want 0.5", got)
	}
}

func TestSlaveUtilizationNoSlaves(t *testing.T) {
	p := paperParams(0.25, 0.05)
	if got := p.SlaveUtilization(32, 1); got != 0 {
		t.Fatalf("no-slave θ=1 utilization = %v, want 0", got)
	}
	if got := p.SlaveUtilization(32, 0.5); !math.IsInf(got, 1) {
		t.Fatalf("no-slave θ<1 utilization = %v, want +Inf", got)
	}
}

func TestBalancedThetaEqualizesUtilizations(t *testing.T) {
	p := paperParams(3.0/7.0, 1.0/40.0)
	for m := 1; m < 32; m++ {
		theta := p.BalancedTheta(m)
		if theta < 0 || theta > 1 {
			continue // infeasible m for this mix; nothing to equalize
		}
		rho1 := p.MasterUtilization(m, theta)
		rho2 := p.SlaveUtilization(m, theta)
		rhoF := p.FlatUtilization()
		if !approx(rho1, rhoF, 1e-9) || !approx(rho2, rhoF, 1e-9) {
			t.Fatalf("m=%d θ₂=%v: ρ1=%v ρ2=%v ρF=%v not balanced", m, theta, rho1, rho2, rhoF)
		}
	}
}

// θ₂ must depend only on (m/p, r, a) — the property Section 4's on-line
// reservation controller relies on. Scaling λ and μ together, or p and m
// together, must not change it.
func TestBalancedThetaInvariance(t *testing.T) {
	base := NewParams(32, 1000, 0.4, 1200, 0.025)
	t2 := base.BalancedTheta(8)

	scaledLoad := NewParams(32, 5000, 0.4, 6000, 0.025)
	if got := scaledLoad.BalancedTheta(8); !approx(got, t2, 1e-12) {
		t.Fatalf("θ₂ changed under λ,μ scaling: %v vs %v", got, t2)
	}

	scaledCluster := NewParams(128, 1000, 0.4, 1200, 0.025)
	if got := scaledCluster.BalancedTheta(32); !approx(got, t2, 1e-12) {
		t.Fatalf("θ₂ changed under p,m scaling: %v vs %v", got, t2)
	}
}

func TestBalancedThetaClosedForm(t *testing.T) {
	// θ₂ = (m/p)(1+r/a) − r/a
	p := paperParams(0.5, 0.02)
	m := 6
	want := (6.0/32.0)*(1+0.02/0.5) - 0.02/0.5
	if got := p.BalancedTheta(m); !approx(got, want, 1e-12) {
		t.Fatalf("BalancedTheta = %v, want %v", got, want)
	}
}

func TestMSStretchAtBalancedThetaEqualsFlat(t *testing.T) {
	for _, a := range []float64{0.25, 3.0 / 7.0, 4.0 / 6.0} {
		for _, r := range []float64{1.0 / 20, 1.0 / 40, 1.0 / 80} {
			p := paperParams(a, r)
			for _, m := range []int{4, 8, 16} {
				theta := p.BalancedTheta(m)
				if theta < 0 || theta > 1 {
					continue
				}
				sm := p.MSStretch(m, theta)
				sf := p.FlatStretch()
				if !approx(sm, sf, 1e-9*sf) {
					t.Fatalf("a=%v r=%v m=%d: S_M(θ₂)=%v != S_F=%v", a, r, m, sm, sf)
				}
			}
		}
	}
}

func TestQuadraticRootsMatchBalancedTheta(t *testing.T) {
	p := paperParams(3.0/7.0, 1.0/40.0)
	for m := 2; m < 31; m++ {
		t1, t2, ok := p.ThetaRange(m)
		if !ok {
			continue
		}
		bal := p.BalancedTheta(m)
		// θ₂ (the balanced root) must be one of the quadratic roots.
		if !approx(t1, bal, 1e-6) && !approx(t2, bal, 1e-6) {
			t.Fatalf("m=%d: balanced θ %v is not a root (%v, %v)", m, bal, t1, t2)
		}
		if t1 > t2 {
			t.Fatalf("m=%d: roots out of order: %v > %v", m, t1, t2)
		}
	}
}

// The quadratic's sign must agree with a direct comparison of the stretch
// factors at interior points.
func TestQuadraticSignAgreesWithDirectComparison(t *testing.T) {
	p := paperParams(0.4, 1.0/40.0)
	for m := 2; m < 31; m++ {
		t1, t2, ok := p.ThetaRange(m)
		if !ok {
			continue
		}
		for _, theta := range []float64{(t1 + t2) / 2, t1 + 0.25*(t2-t1), t1 + 0.75*(t2-t1)} {
			if theta < 0 || theta > 1 {
				continue
			}
			rho1 := p.MasterUtilization(m, theta)
			rho2 := p.SlaveUtilization(m, theta)
			if rho1 >= 1 || rho2 >= 1 {
				continue
			}
			if sm, sf := p.MSStretch(m, theta), p.FlatStretch(); sm > sf+1e-9 {
				t.Fatalf("m=%d θ=%v inside root interval but S_M=%v > S_F=%v", m, theta, sm, sf)
			}
		}
		// Just outside the interval (and stable) M/S must NOT beat flat.
		outside := t2 + 0.02
		if outside <= 1 && p.MasterUtilization(m, outside) < 1 && p.SlaveUtilization(m, outside) < 1 {
			if sm, sf := p.MSStretch(m, outside), p.FlatStretch(); sm < sf-1e-9 {
				t.Fatalf("m=%d θ=%v outside interval but S_M=%v < S_F=%v", m, outside, sm, sf)
			}
		}
	}
}

func TestThetaRangeDegenerateM(t *testing.T) {
	p := paperParams(0.4, 1.0/40.0)
	if _, _, ok := p.ThetaRange(0); ok {
		t.Fatal("m=0 returned a theta range")
	}
	if _, _, ok := p.ThetaRange(32); ok {
		t.Fatal("m=p returned a theta range")
	}
}

func TestOptimalThetaWithinRoots(t *testing.T) {
	p := paperParams(0.4, 1.0/40.0)
	for m := 2; m < 31; m++ {
		theta, ok := p.OptimalTheta(m)
		if !ok {
			continue
		}
		if theta < 0 || theta > 1 {
			t.Fatalf("m=%d: θ_m=%v outside [0,1]", m, theta)
		}
		t1, t2, _ := p.ThetaRange(m)
		mid := (t1 + t2) / 2
		want := math.Min(math.Max(mid, 0), 1)
		if !approx(theta, want, 1e-12) {
			t.Fatalf("m=%d: θ_m=%v, want clamp(midpoint)=%v", m, theta, want)
		}
	}
}

func TestOptimalPlanBeatsFlat(t *testing.T) {
	for _, a := range []float64{2.0 / 8.0, 3.0 / 7.0, 4.0 / 6.0} {
		for _, r := range []float64{1.0 / 10, 1.0 / 20, 1.0 / 40, 1.0 / 80} {
			p := paperParams(a, r)
			plan, err := p.OptimalPlan()
			if err != nil {
				t.Fatalf("a=%v r=%v: %v", a, r, err)
			}
			if plan.Stretch > plan.Flat+1e-9 {
				t.Fatalf("a=%v r=%v: plan stretch %v worse than flat %v", a, r, plan.Stretch, plan.Flat)
			}
			if plan.M < 1 || plan.M >= 32 {
				t.Fatalf("a=%v r=%v: implausible master count %d", a, r, plan.M)
			}
			if plan.Improvement() < 0 {
				t.Fatalf("a=%v r=%v: negative improvement %v", a, r, plan.Improvement())
			}
		}
	}
}

func TestOptimalPlanExhaustiveAgreement(t *testing.T) {
	// The plan must match brute-force minimization over (m, θ-grid) to
	// within grid resolution.
	p := paperParams(3.0/7.0, 1.0/40.0)
	plan, err := p.OptimalPlan()
	if err != nil {
		t.Fatal(err)
	}
	bestS := math.Inf(1)
	for m := 1; m < 32; m++ {
		theta, ok := p.OptimalTheta(m)
		if !ok {
			continue
		}
		if s := p.MSStretch(m, theta); s < bestS {
			bestS = s
		}
	}
	if !approx(plan.Stretch, bestS, 1e-12) {
		t.Fatalf("plan stretch %v != brute force %v", plan.Stretch, bestS)
	}
}

func TestOptimalPlanErrors(t *testing.T) {
	over := Params{P: 2, LambdaH: 1000, LambdaC: 100, MuH: 100, MuC: 10}
	if _, err := over.OptimalPlan(); err == nil {
		t.Fatal("saturated system produced a plan")
	}
	invalid := Params{P: 0}
	if _, err := invalid.OptimalPlan(); err == nil {
		t.Fatal("invalid params produced a plan")
	}
}

func TestExactOptimalThetaNoWorseThanHeuristic(t *testing.T) {
	p := paperParams(3.0/7.0, 1.0/40.0)
	for _, m := range []int{4, 6, 8, 12} {
		heur, ok := p.OptimalTheta(m)
		if !ok {
			continue
		}
		exact := p.ExactOptimalTheta(m)
		if p.MSStretch(m, exact) > p.MSStretch(m, heur)+1e-9 {
			t.Fatalf("m=%d: exact θ %v worse than heuristic %v", m, exact, heur)
		}
	}
}

// Property: for random stable configurations, S_M at the heuristic θ
// never exceeds S_F (Theorem 1's guarantee within the root interval).
func TestTheoremOneProperty(t *testing.T) {
	f := func(aRaw, rRaw, loadRaw uint8) bool {
		a := 0.1 + float64(aRaw%80)/100          // 0.10..0.89
		r := 1.0 / (10 + float64(rRaw%150))      // 1/10..1/160
		load := 0.2 + 0.6*float64(loadRaw%64)/64 // flat utilization target
		muH := 1200.0
		// Choose λ so the flat utilization equals `load`.
		p := NewParams(32, 1, a, muH, r)
		lambda := load / p.FlatUtilization()
		p = NewParams(32, lambda, a, muH, r)
		plan, err := p.OptimalPlan()
		if err != nil {
			return true // infeasible configurations are out of scope
		}
		return plan.Stretch <= plan.Flat+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
