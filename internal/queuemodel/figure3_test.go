package queuemodel

import (
	"math"
	"testing"
)

func TestMSPrimeSharedUtilizations(t *testing.T) {
	p := Params{P: 4, LambdaH: 100, LambdaC: 40, MuH: 200, MuC: 20}
	dyn, stat := p.MSPrimeSharedUtilizations(2)
	// static share per node: 100/(4·200) = 0.125
	if !approx(stat, 0.125, 1e-12) {
		t.Fatalf("static node utilization = %v, want 0.125", stat)
	}
	// dynamic node: 0.125 + 40/(2·20) = 1.125 (saturated)
	if !approx(dyn, 1.125, 1e-12) {
		t.Fatalf("dynamic node utilization = %v, want 1.125", dyn)
	}
	if got := p.MSPrimeSharedStretch(2); !math.IsInf(got, 1) {
		t.Fatalf("saturated shared M/S' stretch = %v, want +Inf", got)
	}
}

func TestMSPrimeSharedZeroK(t *testing.T) {
	p := paperParams(0.4, 1.0/40.0)
	dyn, _ := p.MSPrimeSharedUtilizations(0)
	if !math.IsInf(dyn, 1) {
		t.Fatalf("k=0 dynamic utilization = %v, want +Inf", dyn)
	}
}

// The Jensen degeneracy documented in msprime.go: the shared (literal)
// M/S' reading can never beat flat under processor sharing, and k = p
// reproduces the flat system exactly.
func TestMSPrimeSharedNeverBeatsFlat(t *testing.T) {
	for _, a := range []float64{2.0 / 8.0, 3.0 / 7.0, 4.0 / 6.0} {
		for _, r := range []float64{1.0 / 10, 1.0 / 40, 1.0 / 80} {
			p := paperParams(a, r)
			flat := p.FlatStretch()
			for k := 1; k <= p.P; k++ {
				if s := p.MSPrimeSharedStretch(k); s < flat-1e-9 {
					t.Fatalf("a=%v r=%v k=%d: shared M/S' %v beat flat %v, contradicting Jensen", a, r, k, s, flat)
				}
			}
			if got := p.MSPrimeSharedStretch(p.P); !approx(got, flat, 1e-9) {
				t.Fatalf("shared M/S' with k=p = %v, want flat %v", got, flat)
			}
		}
	}
}

func TestMSPrimeStretchIsDedicatedSplit(t *testing.T) {
	p := paperParams(3.0/7.0, 1.0/40.0)
	for k := 1; k <= p.P-1; k++ {
		got, want := p.MSPrimeStretch(k), p.MSStretch(p.P-k, 0)
		if math.IsInf(got, 1) && math.IsInf(want, 1) {
			continue // both saturated
		}
		if !approx(got, want, 1e-12) {
			t.Fatalf("k=%d: MSPrimeStretch=%v, want MSStretch(p-k, 0)=%v", k, got, want)
		}
	}
	if got := p.MSPrimeStretch(0); !math.IsInf(got, 1) {
		t.Fatalf("k=0 stretch = %v, want +Inf", got)
	}
	if got := p.MSPrimeStretch(p.P); !math.IsInf(got, 1) {
		t.Fatalf("k=p stretch = %v, want +Inf (no static tier)", got)
	}
}

func TestCapacityProportionalMasters(t *testing.T) {
	// λ_h/μ_h = 1 node-equivalent of static work, λ_c/μ_c = 3 of dynamic:
	// m' = ceil(8 · 1/4) = 2.
	p := Params{P: 8, LambdaH: 100, LambdaC: 30, MuH: 100, MuC: 10}
	if got := p.CapacityProportionalMasters(); got != 2 {
		t.Fatalf("CapacityProportionalMasters = %d, want 2", got)
	}
	// Clamping: all-dynamic load must still leave one master.
	p2 := Params{P: 4, LambdaH: 0, LambdaC: 30, MuH: 100, MuC: 10}
	if got := p2.CapacityProportionalMasters(); got != 1 {
		t.Fatalf("all-dynamic m' = %d, want 1", got)
	}
	// All-static load must still leave one dynamic node.
	p3 := Params{P: 4, LambdaH: 100, LambdaC: 0, MuH: 100, MuC: 10}
	if got := p3.CapacityProportionalMasters(); got != 3 {
		t.Fatalf("all-static m' = %d, want p-1 = 3", got)
	}
}

func TestMSPrimeFixedPlanBeatsFlatOnPaperGrid(t *testing.T) {
	for _, a := range []float64{2.0 / 8.0, 3.0 / 7.0, 4.0 / 6.0} {
		for _, r := range []float64{1.0 / 20, 1.0 / 40, 1.0 / 80} {
			p := paperParams(a, r)
			plan, err := p.MSPrimeFixedPlan()
			if err != nil {
				t.Fatalf("a=%v r=%v: %v", a, r, err)
			}
			if plan.Stretch > p.FlatStretch()+1e-9 {
				t.Fatalf("a=%v r=%v: fixed M/S' %v worse than flat %v", a, r, plan.Stretch, p.FlatStretch())
			}
			if plan.K < 1 || plan.K >= p.P {
				t.Fatalf("a=%v r=%v: implausible dynamic-tier size %d", a, r, plan.K)
			}
		}
	}
}

func TestMSDominatesMSPrime(t *testing.T) {
	// The paper's Figure 3(b): optimized M/S is at least as good as the
	// fixed M/S' across the studied parameter space.
	for _, a := range []float64{2.0 / 8.0, 3.0 / 7.0, 4.0 / 6.0} {
		for _, r := range []float64{1.0 / 10, 1.0 / 20, 1.0 / 40, 1.0 / 80} {
			p := paperParams(a, r)
			ms, err := p.OptimalPlan()
			if err != nil {
				t.Fatalf("a=%v r=%v: %v", a, r, err)
			}
			prime, err := p.MSPrimeFixedPlan()
			if err != nil {
				t.Fatalf("a=%v r=%v: %v", a, r, err)
			}
			if ms.Stretch > prime.Stretch+1e-9 {
				t.Fatalf("a=%v r=%v: M/S %v worse than M/S' %v", a, r, ms.Stretch, prime.Stretch)
			}
		}
	}
}

func TestOptimalMSPrimeMatchesOptimalMS(t *testing.T) {
	// With a free k the dedicated-tier M/S' coincides with the optimal
	// M/S plan in the studied regime (θ* = 0) — the reason Figure 3(b)
	// must use the fixed split, as documented in msprime.go.
	p := paperParams(3.0/7.0, 1.0/40.0)
	ms, err := p.OptimalPlan()
	if err != nil {
		t.Fatal(err)
	}
	prime, err := p.OptimalMSPrimePlan()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ms.Stretch, prime.Stretch, 1e-9) {
		t.Fatalf("optimal M/S' %v != optimal M/S %v", prime.Stretch, ms.Stretch)
	}
}

func TestMSPrimePlanErrors(t *testing.T) {
	single := Params{P: 1, LambdaH: 1, LambdaC: 1, MuH: 100, MuC: 10}
	if _, err := single.MSPrimeFixedPlan(); err == nil {
		t.Fatal("single-node M/S' produced a plan")
	}
	over := Params{P: 2, LambdaH: 1000, LambdaC: 100, MuH: 100, MuC: 10}
	if _, err := over.OptimalMSPrimePlan(); err == nil {
		t.Fatal("saturated M/S' produced a plan")
	}
}

func TestFigure3ShapesMatchPaper(t *testing.T) {
	curves := Figure3(DefaultFig3Config())
	if len(curves) != 3 {
		t.Fatalf("Figure3 produced %d curves, want 3", len(curves))
	}
	maxOverFlat, maxOverPrime := 0.0, 0.0
	for _, c := range curves {
		if len(c.Points) == 0 {
			t.Fatalf("curve %s has no points", c.Label)
		}
		for _, pt := range c.Points {
			if pt.OverFlatPct < -1e-9 {
				t.Fatalf("curve %s 1/r=%v: negative improvement over flat %v", c.Label, pt.InvR, pt.OverFlatPct)
			}
			if pt.OverMSPrimePct < -1e-9 {
				t.Fatalf("curve %s 1/r=%v: negative improvement over M/S' %v", c.Label, pt.InvR, pt.OverMSPrimePct)
			}
			if pt.OverFlatPct > maxOverFlat {
				maxOverFlat = pt.OverFlatPct
			}
			if pt.OverMSPrimePct > maxOverPrime {
				maxOverPrime = pt.OverMSPrimePct
			}
		}
	}
	// Paper: "M/S outperforms the flat model by up to 60% and ... the
	// M/S' model by up to 18%". Require the same order of magnitude.
	if maxOverFlat < 30 || maxOverFlat > 120 {
		t.Fatalf("max improvement over flat = %.1f%%, paper reports up to ~60%%", maxOverFlat)
	}
	if maxOverPrime < 5 || maxOverPrime > 60 {
		t.Fatalf("max improvement over M/S' = %.1f%%, paper reports up to ~18%%", maxOverPrime)
	}
}

// Improvement over flat must grow with CGI intensity (1/r) along every
// curve — the dominant visual trend of Figure 3(a).
func TestFigure3OverFlatMonotoneInInvR(t *testing.T) {
	for _, c := range Figure3(DefaultFig3Config()) {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].OverFlatPct < c.Points[i-1].OverFlatPct-1e-6 {
				t.Fatalf("curve %s: over-flat improvement dropped from %v to %v at 1/r=%v",
					c.Label, c.Points[i-1].OverFlatPct, c.Points[i].OverFlatPct, c.Points[i].InvR)
			}
		}
	}
}

func TestFigure3SkipsInvalidInvR(t *testing.T) {
	cfg := DefaultFig3Config()
	cfg.InvRs = []float64{0, -5, 40}
	curves := Figure3(cfg)
	for _, c := range curves {
		for _, pt := range c.Points {
			if pt.InvR <= 0 {
				t.Fatalf("invalid 1/r %v survived", pt.InvR)
			}
		}
	}
}
