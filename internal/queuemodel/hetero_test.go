package queuemodel

import (
	"math"
	"testing"
	"testing/quick"
)

func uniformHetero(p, loadNodes int) HeteroParams {
	params := NewParams(p, 0, 0.4, 1200, 1.0/40)
	h := Uniform(params)
	// Set λ for utilization loadNodes/p node-equivalents.
	unit := NewParams(p, 1, 0.4, 1200, 1.0/40)
	lambda := (float64(loadNodes) / float64(p)) / unit.FlatUtilization()
	full := NewParams(p, lambda, 0.4, 1200, 1.0/40)
	h.LambdaH, h.LambdaC = full.LambdaH, full.LambdaC
	return h
}

func TestHeteroValidate(t *testing.T) {
	good := uniformHetero(8, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Speeds = nil
	if bad.Validate() == nil {
		t.Fatal("empty speeds accepted")
	}
	bad = good
	bad.Speeds = []float64{1, 0}
	if bad.Validate() == nil {
		t.Fatal("zero speed accepted")
	}
	bad = good
	bad.MuC = 0
	if bad.Validate() == nil {
		t.Fatal("zero mu accepted")
	}
	bad = good
	bad.LambdaH = -1
	if bad.Validate() == nil {
		t.Fatal("negative lambda accepted")
	}
}

// With uniform speeds the heterogeneous model must reduce exactly to the
// homogeneous one.
func TestHeteroReducesToHomogeneous(t *testing.T) {
	p := NewParams(16, 900, 0.41, 1200, 1.0/40)
	h := Uniform(p)
	if got, want := h.HeteroFlatStretch(), p.FlatStretch(); !approx(got, want, 1e-9) {
		t.Fatalf("flat: hetero %v vs homogeneous %v", got, want)
	}
	masters := []int{0, 1, 2}
	for _, theta := range []float64{0, 0.1, 0.3} {
		got := h.HeteroMSStretch(masters, theta)
		want := p.MSStretch(3, theta)
		if math.IsInf(got, 1) && math.IsInf(want, 1) {
			continue // both saturated: models agree
		}
		if !approx(got, want, 1e-9) {
			t.Fatalf("θ=%v: hetero %v vs homogeneous %v", theta, got, want)
		}
	}
}

func TestHeteroFasterNodesLowerStretch(t *testing.T) {
	base := uniformHetero(8, 4)
	fast := base
	fast.Speeds = []float64{2, 2, 2, 2, 2, 2, 2, 2}
	if fast.HeteroFlatStretch() >= base.HeteroFlatStretch() {
		t.Fatalf("doubling all speeds did not reduce stretch: %v vs %v",
			fast.HeteroFlatStretch(), base.HeteroFlatStretch())
	}
}

func TestHeteroSaturation(t *testing.T) {
	h := uniformHetero(4, 8) // offered work exceeds capacity
	if !math.IsInf(h.HeteroFlatStretch(), 1) {
		t.Fatal("saturated flat stretch finite")
	}
}

func TestHeteroMSStretchDegenerate(t *testing.T) {
	h := uniformHetero(4, 2)
	if !math.IsInf(h.HeteroMSStretch([]int{0}, -0.1), 1) {
		t.Fatal("negative theta accepted")
	}
	if !math.IsInf(h.HeteroMSStretch([]int{0, 0}, 0.1), 1) {
		t.Fatal("duplicate master accepted")
	}
	if !math.IsInf(h.HeteroMSStretch([]int{9}, 0.1), 1) {
		t.Fatal("out-of-range master accepted")
	}
	// All nodes masters with θ<1 leaves dynamics nowhere to go.
	if !math.IsInf(h.HeteroMSStretch([]int{0, 1, 2, 3}, 0.5), 1) {
		t.Fatal("slave-less θ<1 configuration accepted")
	}
}

func TestOptimalHeteroPlanBeatsFlat(t *testing.T) {
	h := uniformHetero(8, 5)
	// Make half the cluster 3x faster.
	h.Speeds = []float64{1, 1, 1, 1, 3, 3, 3, 3}
	plan, err := h.OptimalHeteroPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stretch > plan.Flat+1e-9 {
		t.Fatalf("hetero plan %v worse than flat %v", plan.Stretch, plan.Flat)
	}
	if plan.Improvement() < 0 {
		t.Fatalf("negative improvement %v", plan.Improvement())
	}
	if len(plan.Masters) == 0 || len(plan.Masters) >= 8 {
		t.Fatalf("implausible master set %v", plan.Masters)
	}
}

func TestOptimalHeteroMatchesHomogeneousOnUniform(t *testing.T) {
	p := NewParams(12, 700, 0.41, 1200, 1.0/40)
	homPlan, err := p.OptimalPlan()
	if err != nil {
		t.Fatal(err)
	}
	h := Uniform(p)
	hetPlan, err := h.OptimalHeteroPlan()
	if err != nil {
		t.Fatal(err)
	}
	// The hetero search optimizes θ exactly while the homogeneous plan
	// uses the paper's midpoint heuristic, so hetero can only be equal
	// or slightly better.
	if hetPlan.Stretch > homPlan.Stretch*(1+1e-6) {
		t.Fatalf("uniform hetero plan %v worse than homogeneous %v", hetPlan.Stretch, homPlan.Stretch)
	}
	if math.Abs(hetPlan.Stretch-homPlan.Stretch) > 0.05*homPlan.Stretch {
		t.Fatalf("uniform hetero plan %v far from homogeneous %v", hetPlan.Stretch, homPlan.Stretch)
	}
}

func TestHeteroPlanErrors(t *testing.T) {
	h := uniformHetero(8, 4)
	h.Speeds = h.Speeds[:1]
	// Rescale load onto one node → saturated and too small.
	if _, err := h.OptimalHeteroPlan(); err == nil {
		t.Fatal("single-node hetero plan accepted")
	}
	bad := uniformHetero(8, 4)
	bad.MuH = 0
	if _, err := bad.OptimalHeteroPlan(); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// Property: the optimal heterogeneous plan never loses to flat when one
// exists, for random speed mixes at stable loads.
func TestHeteroPlanDominatesFlatProperty(t *testing.T) {
	f := func(speedsRaw []uint8, loadRaw uint8) bool {
		if len(speedsRaw) < 2 {
			return true
		}
		if len(speedsRaw) > 12 {
			speedsRaw = speedsRaw[:12]
		}
		speeds := make([]float64, len(speedsRaw))
		for i, s := range speedsRaw {
			speeds[i] = 0.5 + float64(s%8)/2 // 0.5 … 4.0
		}
		h := uniformHetero(len(speeds), 0)
		h.Speeds = speeds
		// Offered load: 40-80% of the total speed capacity.
		frac := 0.4 + 0.4*float64(loadRaw%64)/64
		capacity := 0.0
		for _, s := range speeds {
			capacity += s
		}
		unit := HeteroParams{Speeds: speeds, LambdaH: 1 / (1.41), LambdaC: 0.41 / 1.41, MuH: 1200, MuC: 30}
		unitLoad := unit.LambdaH/unit.MuH + unit.LambdaC/unit.MuC
		lambda := frac * capacity / unitLoad
		h.LambdaH = lambda / 1.41
		h.LambdaC = lambda - h.LambdaH
		h.MuH, h.MuC = 1200, 30

		plan, err := h.OptimalHeteroPlan()
		if err != nil {
			return true // no stable configuration is acceptable
		}
		return plan.Stretch <= h.HeteroFlatStretch()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
