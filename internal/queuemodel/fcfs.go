package queuemodel

// FCFS analysis. Section 3 notes that "requests can be processed in the
// First Come First Serve (FCFS) manner or processor sharing manner";
// the paper's stretch formulas are the PS ones (insensitive to the
// service distribution), which this file complements with the exact
// M/G/1-FCFS counterparts via Pollaczek–Khinchine. The FCFS view makes
// the separation argument vivid: a mixed FCFS queue charges every
// static request the *residual* of in-progress CGI work, so the static
// stretch explodes with 1/r even at moderate utilization — far worse
// than under PS. This is the quantitative version of the paper's
// "mixing static and dynamic content processing can slow down simple
// static request processing".
//
// Model: one node receives Poisson streams of static (rate γ_h, service
// exp(μ_h)) and dynamic (rate γ_c, service exp(μ_c)) requests served
// FCFS. M/G/1 with the mixture service distribution:
//
//	ρ  = γ_h/μ_h + γ_c/μ_c
//	E[S²] = (γ_h·2/μ_h² + γ_c·2/μ_c²) / (γ_h+γ_c)   (exponential classes)
//	W  = (γ_h+γ_c)·E[S²] / (2(1−ρ))                  (Pollaczek–Khinchine)
//
// Response of class i is W + 1/μ_i, stretch is 1 + W·μ_i.

import "math"

// FCFSNodeStretch returns the per-class stretch factors of one FCFS node
// receiving the given class rates. Saturated nodes report +Inf.
func FCFSNodeStretch(gammaH, gammaC, muH, muC float64) (staticS, dynamicS float64) {
	if muH <= 0 || muC <= 0 || gammaH < 0 || gammaC < 0 {
		return math.Inf(1), math.Inf(1)
	}
	total := gammaH + gammaC
	if total == 0 {
		return 1, 1
	}
	rho := gammaH/muH + gammaC/muC
	if rho >= 1 {
		return math.Inf(1), math.Inf(1)
	}
	// Second moment of the exponential-mixture service distribution.
	es2 := (gammaH*2/(muH*muH) + gammaC*2/(muC*muC)) / total
	w := total * es2 / (2 * (1 - rho))
	return 1 + w*muH, 1 + w*muC
}

// FCFSFlatStretch returns the mean stretch of the flat architecture
// under FCFS service: every node receives λ_h/p and λ_c/p.
func (p Params) FCFSFlatStretch() float64 {
	sh, sc := FCFSNodeStretch(p.LambdaH/float64(p.P), p.LambdaC/float64(p.P), p.MuH, p.MuC)
	if math.IsInf(sh, 1) || math.IsInf(sc, 1) {
		return math.Inf(1)
	}
	a := p.A()
	return (sh + a*sc) / (1 + a)
}

// FCFSMSStretch returns the mean stretch of the M/S architecture under
// FCFS service with m masters and admission fraction theta.
func (p Params) FCFSMSStretch(m int, theta float64) float64 {
	if m < 1 || m > p.P || theta < 0 || theta > 1 {
		return math.Inf(1)
	}
	slaves := p.P - m
	mh, mc := FCFSNodeStretch(p.LambdaH/float64(m), theta*p.LambdaC/float64(m), p.MuH, p.MuC)
	if math.IsInf(mh, 1) {
		return math.Inf(1)
	}
	a := p.A()
	if slaves == 0 {
		if theta < 1 {
			return math.Inf(1)
		}
		return (mh + a*mc) / (1 + a)
	}
	_, sc := FCFSNodeStretch(0, (1-theta)*p.LambdaC/float64(slaves), p.MuH, p.MuC)
	if theta < 1 && math.IsInf(sc, 1) {
		return math.Inf(1)
	}
	// Weighted by arrivals: statics and admitted dynamics at masters,
	// the rest at slaves.
	return (mh + a*theta*mc + a*(1-theta)*sc) / (1 + a)
}

// FCFSSeparationGain returns the ratio of the flat FCFS stretch to the
// best dedicated-split FCFS stretch — how much pure separation buys
// under FCFS. It scans m like Theorem 1 does (θ = 0: under FCFS,
// admitting any CGI to a master re-exposes statics to CGI residuals, so
// the dedicated split is optimal whenever it is stable).
func (p Params) FCFSSeparationGain() (gain float64, bestM int) {
	flat := p.FCFSFlatStretch()
	best := math.Inf(1)
	bestM = -1
	for m := 1; m < p.P; m++ {
		if s := p.FCFSMSStretch(m, 0); s < best {
			best = s
			bestM = m
		}
	}
	if bestM < 0 || math.IsInf(flat, 1) || best <= 0 {
		return 1, bestM
	}
	return flat / best, bestM
}
