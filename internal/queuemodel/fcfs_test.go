package queuemodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFCFSNodeIdle(t *testing.T) {
	sh, sc := FCFSNodeStretch(0, 0, 1200, 30)
	if sh != 1 || sc != 1 {
		t.Fatalf("idle node stretches: %v, %v", sh, sc)
	}
}

func TestFCFSNodeSingleClassMatchesMM1(t *testing.T) {
	// Pure static M/M/1-FCFS: W = ρ/(μ(1−ρ)), stretch = 1 + Wμ = 1 + ρ/(1−ρ)
	// = 1/(1−ρ) — identical to PS for a single exponential class.
	mu := 1200.0
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		sh, _ := FCFSNodeStretch(rho*mu, 0, mu, 30)
		want := 1 / (1 - rho)
		if math.Abs(sh-want) > 1e-9 {
			t.Fatalf("ρ=%v: FCFS single-class stretch %v, want %v", rho, sh, want)
		}
	}
}

func TestFCFSMixedPunishesStatics(t *testing.T) {
	// A 50%-utilized node: statics alone vs statics sharing with CGI at
	// the same total utilization. The mixed queue's CGI residuals must
	// multiply the static stretch.
	mu, muc := 1200.0, 30.0
	pureH, _ := FCFSNodeStretch(0.5*mu, 0, mu, muc)
	mixedH, _ := FCFSNodeStretch(0.25*mu, 0.25*muc, mu, muc)
	if mixedH < 5*pureH {
		t.Fatalf("mixed FCFS static stretch %v not ≫ pure %v", mixedH, pureH)
	}
}

func TestFCFSSaturation(t *testing.T) {
	sh, sc := FCFSNodeStretch(1300, 0, 1200, 30)
	if !math.IsInf(sh, 1) || !math.IsInf(sc, 1) {
		t.Fatalf("saturated FCFS node: %v, %v", sh, sc)
	}
	if sh, _ := FCFSNodeStretch(-1, 0, 1200, 30); !math.IsInf(sh, 1) {
		t.Fatal("negative rate accepted")
	}
}

func TestFCFSFlatWorseThanPS(t *testing.T) {
	// With highly variable service (CGI 40x statics), FCFS mean stretch
	// must exceed the PS stretch at the same utilization: PK waits are
	// driven by E[S²], which the CGI class inflates.
	p := paperParams(3.0/7.0, 1.0/40.0)
	ps := p.FlatStretch()
	fcfs := p.FCFSFlatStretch()
	if fcfs <= ps {
		t.Fatalf("FCFS flat %v not above PS flat %v", fcfs, ps)
	}
}

func TestFCFSSeparationGainLargerThanPS(t *testing.T) {
	// The quantitative point of the analysis: separation buys far more
	// under FCFS than under PS.
	p := paperParams(3.0/7.0, 1.0/40.0)
	fcfsGain, m := p.FCFSSeparationGain()
	if m < 1 || m >= p.P {
		t.Fatalf("implausible FCFS split m=%d", m)
	}
	plan, err := p.OptimalPlan()
	if err != nil {
		t.Fatal(err)
	}
	psGain := plan.Flat / plan.Stretch
	if fcfsGain <= psGain {
		t.Fatalf("FCFS separation gain %v not above PS gain %v", fcfsGain, psGain)
	}
	if fcfsGain < 2 {
		t.Fatalf("FCFS separation gain %v implausibly small for r=1/40", fcfsGain)
	}
}

func TestFCFSMSStretchDegenerate(t *testing.T) {
	p := paperParams(0.4, 1.0/40.0)
	if !math.IsInf(p.FCFSMSStretch(0, 0.5), 1) {
		t.Fatal("m=0 accepted")
	}
	if !math.IsInf(p.FCFSMSStretch(4, -0.1), 1) {
		t.Fatal("negative theta accepted")
	}
	if !math.IsInf(p.FCFSMSStretch(32, 0.5), 1) {
		t.Fatal("slave-less theta<1 accepted")
	}
	// All-master θ=1 is the FCFS flat system.
	if got, want := p.FCFSMSStretch(32, 1), p.FCFSFlatStretch(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("m=p θ=1 = %v, want flat %v", got, want)
	}
}

// Property: for stable mixes, the dedicated FCFS split never loses to
// the FCFS flat system (the separation theorem under FCFS).
func TestFCFSSeparationProperty(t *testing.T) {
	f := func(aRaw, rRaw, loadRaw uint8) bool {
		a := 0.1 + float64(aRaw%70)/100
		r := 1.0 / (10 + float64(rRaw%100))
		load := 0.2 + 0.5*float64(loadRaw%64)/64
		p := NewParams(32, 1, a, 1200, r)
		lambda := load / p.FlatUtilization()
		p = NewParams(32, lambda, a, 1200, r)
		gain, m := p.FCFSSeparationGain()
		if m < 0 {
			return true // no stable split; nothing to assert
		}
		return gain >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
