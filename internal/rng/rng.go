// Package rng provides deterministic, seedable random variate generators
// used throughout the simulator and workload generators.
//
// Every stochastic component in this repository draws from an explicit
// *rng.Stream so that experiments are reproducible run to run: the same
// seed always yields the same trace, the same arrival process and the same
// simulated schedule. Streams are cheap to fork, which lets each node,
// workload class, or generator own an independent substream derived from a
// single experiment seed.
package rng

import (
	"math"
	"math/rand"
)

// Stream is a deterministic source of random variates. It wraps the
// standard library generator with the distribution samplers the paper's
// workloads require (exponential inter-arrivals and demands, heavy-tailed
// file sizes, Zipf popularity).
type Stream struct {
	r *rand.Rand
}

// New returns a Stream seeded with seed. Two Streams created with the same
// seed produce identical sequences.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent substream. The derivation is deterministic:
// forking the same stream in the same order yields the same children. The
// label decorrelates substreams that are forked for different purposes.
func (s *Stream) Fork(label int64) *Stream {
	// SplitMix-style mix of a fresh draw with the label so sibling
	// substreams do not overlap even for adjacent labels.
	z := uint64(s.r.Int63()) ^ (uint64(label) * 0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return New(int64(z & (1<<63 - 1)))
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponential variate with the given mean. A non-positive
// mean returns 0, which callers use to model deterministic zero-cost steps.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a normal variate with the given mean and standard
// deviation, truncated at zero (negative draws are clamped to 0) because
// all quantities modeled here — times, sizes — are non-negative.
func (s *Stream) Normal(mean, stddev float64) float64 {
	v := mean + stddev*s.r.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Lognormal returns a lognormal variate parameterized by the mean and
// standard deviation of the underlying normal.
func (s *Stream) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
// Web file sizes and CGI demands are commonly heavy-tailed; alpha in
// (1, 2) gives finite mean and infinite variance.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto variate truncated to [lo, hi], the
// distribution used by task-assignment studies the paper cites (Crovella &
// Harchol-Balter) for web service demands.
func (s *Stream) BoundedPareto(lo, hi, alpha float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		return lo
	}
	u := s.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := -(u*ha - u*la - ha) / (ha * la)
	return math.Pow(1/x, 1/alpha)
}

// Zipf returns integers in [0, n) with Zipf popularity of exponent theta
// (theta = 0 is uniform; larger theta concentrates mass on low indices).
// It is used for file popularity in the SPECweb96-like fileset.
type Zipf struct {
	cdf []float64
	s   *Stream
}

// NewZipf constructs a Zipf sampler over n items.
func (s *Stream) NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, s: s}
}

// Next draws the next Zipf-distributed index.
func (z *Zipf) Next() int {
	u := z.s.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChoice draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero or negative total weight yields 0.
func (s *Stream) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.r.Float64() < p }
