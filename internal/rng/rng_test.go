package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with identical seeds diverged at draw %d", i)
		}
	}
}

func TestForkDeterminism(t *testing.T) {
	a := New(7).Fork(3)
	b := New(7).Fork(3)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("forked streams with identical lineage diverged at draw %d", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Fork(1)
	b := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling substreams produced %d identical draws out of 100", same)
	}
}

func TestExpMean(t *testing.T) {
	s := New(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("exponential mean = %.4f, want 2.5 ± 0.05", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := New(1)
	if got := s.Exp(0); got != 0 {
		t.Fatalf("Exp(0) = %v, want 0", got)
	}
	if got := s.Exp(-1); got != 0 {
		t.Fatalf("Exp(-1) = %v, want 0", got)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) produced %v", v)
		}
	}
}

func TestNormalTruncation(t *testing.T) {
	s := New(4)
	for i := 0; i < 10000; i++ {
		if v := s.Normal(0.1, 10); v < 0 {
			t.Fatalf("Normal produced negative value %v", v)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(3, 1.5); v < 3 {
			t.Fatalf("Pareto(3, 1.5) produced %v < xm", v)
		}
	}
}

func TestParetoDegenerate(t *testing.T) {
	s := New(5)
	if v := s.Pareto(0, 1.5); v != 0 {
		t.Fatalf("Pareto with xm=0 = %v, want 0", v)
	}
	if v := s.Pareto(1, 0); v != 0 {
		t.Fatalf("Pareto with alpha=0 = %v, want 0", v)
	}
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	s := New(6)
	f := func(seed int64) bool {
		st := New(seed)
		for i := 0; i < 100; i++ {
			v := st.BoundedPareto(1, 100, 1.2)
			if v < 1-1e-9 || v > 100+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = s
}

func TestBoundedParetoDegenerate(t *testing.T) {
	s := New(6)
	if v := s.BoundedPareto(5, 3, 1.2); v != 5 {
		t.Fatalf("BoundedPareto with hi<lo = %v, want lo", v)
	}
	if v := s.BoundedPareto(0, 3, 1.2); v != 0 {
		t.Fatalf("BoundedPareto with lo=0 = %v, want 0", v)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	s := New(7)
	z := s.NewZipf(100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		idx := z.Next()
		if idx < 0 || idx >= 100 {
			t.Fatalf("Zipf index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf(theta=1) not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	s := New(8)
	z := s.NewZipf(10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("Zipf(theta=0) bucket %d has fraction %.4f, want ~0.1", i, frac)
		}
	}
}

func TestZipfDegenerateN(t *testing.T) {
	s := New(9)
	z := s.NewZipf(0, 1)
	if got := z.Next(); got != 0 {
		t.Fatalf("Zipf over empty domain returned %d, want 0", got)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(10)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("weight bucket %d has fraction %.4f, want %.2f", i, got, want)
		}
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	s := New(11)
	if got := s.WeightedChoice([]float64{0, 0}); got != 0 {
		t.Fatalf("WeightedChoice with zero weights = %d, want 0", got)
	}
	if got := s.WeightedChoice([]float64{-1, 5}); got != 1 {
		t.Fatalf("WeightedChoice must skip negative weights, got %d", got)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(12)
	for i := 0; i < 1000; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestLognormalPositive(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		if v := s.Lognormal(0, 1); v <= 0 {
			t.Fatalf("Lognormal produced non-positive %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(14)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm returned invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBoundedParetoMeanShape(t *testing.T) {
	// For bounded Pareto the mass concentrates near lo for alpha > 1;
	// the empirical mean must sit strictly between lo and hi and below
	// the midpoint for a strongly skewed shape.
	s := New(15)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.BoundedPareto(1, 1000, 1.5)
	}
	mean := sum / n
	if mean <= 1 || mean >= 1000 {
		t.Fatalf("bounded Pareto mean %v escaped bounds", mean)
	}
	if mean > 100 {
		t.Fatalf("bounded Pareto(alpha=1.5) mean %v not skewed toward lo", mean)
	}
}
