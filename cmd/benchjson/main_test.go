package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: msweb
cpu: Example CPU @ 2.00GHz
BenchmarkEngineScheduleFire-4   	12034518	        99.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkParallelGrid/sequential-4         	       8	 140123456 ns/op
BenchmarkClusterSimulation-4    	      36	  31456789 ns/op	        13.02 events/req
PASS
ok  	msweb	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "msweb" {
		t.Fatalf("header mis-parsed: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("%d results, want 3", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkEngineScheduleFire" || r.Procs != 4 || r.Iterations != 12034518 {
		t.Fatalf("first result mis-parsed: %+v", r)
	}
	if r.Metrics["allocs/op"] != 0 || r.Metrics["ns/op"] != 99.3 {
		t.Fatalf("metrics mis-parsed: %+v", r.Metrics)
	}
	if rep.Results[1].Name != "BenchmarkParallelGrid/sequential" {
		t.Fatalf("sub-benchmark name mis-parsed: %+v", rep.Results[1])
	}
	if rep.Results[2].Metrics["events/req"] != 13.02 {
		t.Fatalf("custom metric lost: %+v", rep.Results[2].Metrics)
	}
}

func TestLiveResults(t *testing.T) {
	dir := t.TempDir()
	closed := filepath.Join(dir, "closed.json")
	open := filepath.Join(dir, "open.json")
	os.WriteFile(closed, []byte(`{
		"mode": "closed", "profile": "KSU", "sent": 100, "ok": 100, "errors": 0,
		"throughput_rps": 250.5,
		"latency": {"p50": 0.001, "p95": 0.004, "p99": 0.006, "mean": 0.002, "max": 0.01},
		"corrected": {"p50": 0.002, "p95": 0.005, "p99": 0.009, "mean": 0.003, "max": 0.01}
	}`), 0o644) //nolint:errcheck
	os.WriteFile(open, []byte(`{
		"mode": "open", "sent": 50, "ok": 50, "errors": 0,
		"throughput_rps": 480,
		"latency": {"p50": 0.001, "p95": 0.002, "p99": 0.003, "mean": 0.001, "max": 0.004}
	}`), 0o644) //nolint:errcheck

	rs, _, err := liveResults([]string{closed, open})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results, want 2", len(rs))
	}
	c := rs[0]
	if c.Name != "LiveCluster/closed" || c.Iterations != 100 {
		t.Fatalf("closed result mis-folded: %+v", c)
	}
	if c.Metrics["throughput_rps"] != 250.5 || c.Metrics["latency_p99_s"] != 0.006 {
		t.Fatalf("closed metrics mis-folded: %+v", c.Metrics)
	}
	if c.Metrics["corrected_p99_s"] != 0.009 {
		t.Fatalf("corrected p99 lost: %+v", c.Metrics)
	}
	o := rs[1]
	if o.Name != "LiveCluster/open" {
		t.Fatalf("open result mis-folded: %+v", o)
	}
	if _, present := o.Metrics["corrected_p99_s"]; present {
		t.Fatal("open summary must not grow a corrected metric")
	}

	chaosPath := filepath.Join(dir, "chaos.json")
	os.WriteFile(chaosPath, []byte(`{
		"mode": "closed", "sent": 200, "ok": 190, "errors": 0, "shed": 6, "exhausted": 4,
		"throughput_rps": 300,
		"latency": {"p50": 0.001, "p95": 0.002, "p99": 0.003, "mean": 0.001, "max": 0.004},
		"chaos": {"seed": 7, "events": 12, "faulted_nodes": 3, "breaker_opens": 5, "failovers": 9, "retries": 11}
	}`), 0o644) //nolint:errcheck
	rs, _, err = liveResults([]string{chaosPath})
	if err != nil {
		t.Fatal(err)
	}
	ch := rs[0]
	if ch.Name != "LiveCluster/closed/chaos" {
		t.Fatalf("chaos run not named apart: %+v", ch)
	}
	if ch.Metrics["shed"] != 6 || ch.Metrics["exhausted"] != 4 ||
		ch.Metrics["chaos_breaker_opens"] != 5 || ch.Metrics["chaos_failovers"] != 9 {
		t.Fatalf("chaos metrics mis-folded: %+v", ch.Metrics)
	}

	fastPath := filepath.Join(dir, "fast.json")
	os.WriteFile(fastPath, []byte(`{
		"mode": "closed", "fast": true, "frame": true, "sent": 1000, "ok": 1000, "errors": 0,
		"throughput_rps": 23000, "cores": 1, "req_s_per_core": 23000,
		"latency": {"p50": 0.0003, "p95": 0.0007, "p99": 0.001, "mean": 0.0004, "max": 0.004}
	}`), 0o644) //nolint:errcheck
	rs, headline, err := liveResults([]string{fastPath})
	if err != nil {
		t.Fatal(err)
	}
	fr := rs[0]
	if fr.Name != "LiveCluster/closed/fast" {
		t.Fatalf("fast run not named apart: %+v", fr)
	}
	if fr.Metrics["req_s_per_core"] != 23000 || fr.Metrics["cores"] != 1 || fr.Metrics["frame"] != 1 {
		t.Fatalf("fast metrics mis-folded: %+v", fr.Metrics)
	}
	if headline.perCore != 23000 {
		t.Fatalf("req_s_per_core headline %v, want 23000", headline.perCore)
	}
	if headline.aggregate != 23000 {
		t.Fatalf("req_s aggregate headline %v, want 23000", headline.aggregate)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"not": "a summary"}`), 0o644) //nolint:errcheck
	if _, _, err := liveResults([]string{bad}); err == nil {
		t.Fatal("accepted a JSON file that is not a loadgen summary")
	}
	if _, _, err := liveResults([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("accepted a missing file")
	}
}

func TestScalingFold(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scaling.json")
	os.WriteFile(path, []byte(`{
		"mode": "closed", "fast": true, "frame_client": true,
		"sent": 800, "ok": 800, "errors": 0,
		"throughput_rps": 36000, "req_s": 36000, "cores": 2, "req_s_per_core": 18000,
		"latency": {"p99": 0.001},
		"scaling": [
			{"cores": 1, "ok": 400, "req_s": 20000, "req_s_per_core": 20000, "p99_s": 0.001},
			{"cores": 2, "ok": 400, "req_s": 36000, "req_s_per_core": 18000, "p99_s": 0.0012},
			{"cores": 4, "skipped": true, "reason": "needs 4 procs, machine has 2 CPUs"}
		]
	}`), 0o644) //nolint:errcheck
	rs, hl, err := liveResults([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Name != "LiveCluster/closed/fast/frameclient/scaling" {
		t.Fatalf("scaling run not named apart: %+v", rs[0])
	}
	if hl.aggregate != 36000 {
		t.Fatalf("aggregate headline %v, want 36000", hl.aggregate)
	}
	sr := hl.scaling
	if sr == nil || len(sr.Points) != 3 {
		t.Fatalf("scaling report mis-folded: %+v", sr)
	}
	if sr.PeakCores != 2 || sr.PeakReqS != 36000 {
		t.Fatalf("peak mis-located: %+v", sr)
	}
	// Speedup 36000/20000 = 1.8 at 2× cores → efficiency 0.9.
	if got := sr.Points[1].Speedup; got < 1.79 || got > 1.81 {
		t.Fatalf("speedup %v, want 1.8", got)
	}
	if got := sr.ParallelEfficiency; got < 0.89 || got > 0.91 {
		t.Fatalf("parallel efficiency %v, want 0.9", got)
	}
	if !sr.Points[2].Skipped || sr.Points[2].Reason == "" {
		t.Fatalf("skipped point not carried through: %+v", sr.Points[2])
	}

	// A sweep where every point was skipped (1-CPU box asked for 2,4)
	// yields no curve, and must not fabricate one.
	allSkipped := filepath.Join(dir, "skipped.json")
	os.WriteFile(allSkipped, []byte(`{
		"mode": "closed", "fast": true,
		"scaling": [{"cores": 2, "skipped": true, "reason": "x"}]
	}`), 0o644) //nolint:errcheck
	_, hl, err = liveResults([]string{allSkipped})
	if err != nil {
		t.Fatal(err)
	}
	if hl.scaling != nil {
		t.Fatalf("fabricated a curve from skipped points: %+v", hl.scaling)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, ok := parseLine("BenchmarkBroken"); ok {
		t.Fatal("accepted a line without an iteration count")
	}
	if _, ok := parseLine("BenchmarkBroken notanumber"); ok {
		t.Fatal("accepted a non-numeric iteration count")
	}
}

func TestTournamentResults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy-tournament.csv")
	os.WriteFile(path, []byte(
		"profile,rho,policy,mean_ms,p99_ms,stretch,cpu_util,shed_rate\n"+
			"UCB,0.5,M/S,12.5,80.25,2.1,0.44,0\n"+
			"UCB,0.5,Random,20,120,3.5,0.43,0.015\n"), 0o644) //nolint:errcheck
	rows, err := tournamentResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	r := rows[0]
	if r.Profile != "UCB" || r.Rho != 0.5 || r.Policy != "M/S" || r.MeanMs != 12.5 || r.P99Ms != 80.25 {
		t.Fatalf("first row mis-parsed: %+v", r)
	}
	if rows[1].ShedRate != 0.015 {
		t.Fatalf("shed_rate mis-parsed: %+v", rows[1])
	}

	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("a,b\n1,2\n"), 0o644) //nolint:errcheck
	if _, err := tournamentResults(bad); err == nil {
		t.Fatal("accepted a CSV without tournament columns")
	}
	if _, err := tournamentResults(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("accepted a missing file")
	}
}

func TestAutoscaleResults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "autoscale-vs-fixed-fleet.csv")
	os.WriteFile(path, []byte(
		"workload,scenario,stretch,slo_attainment,node_hours,saved_pct,slave_offs,epochs\n"+
			"diurnal,fixed fleet,11.5,0.986,0.0646,0,0,0\n"+
			"diurnal,autoscaled,9.5,0.999,0.0514,20.5,29,33\n"), 0o644) //nolint:errcheck
	rows, err := autoscaleResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	r := rows[1]
	if r.Workload != "diurnal" || r.Scenario != "autoscaled" ||
		r.SavedPct != 20.5 || r.SLO != 0.999 || r.SlaveOffs != 29 || r.Epochs != 33 {
		t.Fatalf("autoscaled row mis-parsed: %+v", r)
	}

	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("a,b\n1,2\n"), 0o644) //nolint:errcheck
	if _, err := autoscaleResults(bad); err == nil {
		t.Fatal("accepted a CSV without autoscale columns")
	}
	if _, err := autoscaleResults(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("accepted a missing file")
	}
}
