package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: msweb
cpu: Example CPU @ 2.00GHz
BenchmarkEngineScheduleFire-4   	12034518	        99.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkParallelGrid/sequential-4         	       8	 140123456 ns/op
BenchmarkClusterSimulation-4    	      36	  31456789 ns/op	        13.02 events/req
PASS
ok  	msweb	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "msweb" {
		t.Fatalf("header mis-parsed: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("%d results, want 3", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkEngineScheduleFire" || r.Procs != 4 || r.Iterations != 12034518 {
		t.Fatalf("first result mis-parsed: %+v", r)
	}
	if r.Metrics["allocs/op"] != 0 || r.Metrics["ns/op"] != 99.3 {
		t.Fatalf("metrics mis-parsed: %+v", r.Metrics)
	}
	if rep.Results[1].Name != "BenchmarkParallelGrid/sequential" {
		t.Fatalf("sub-benchmark name mis-parsed: %+v", rep.Results[1])
	}
	if rep.Results[2].Metrics["events/req"] != 13.02 {
		t.Fatalf("custom metric lost: %+v", rep.Results[2].Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, ok := parseLine("BenchmarkBroken"); ok {
		t.Fatal("accepted a line without an iteration count")
	}
	if _, ok := parseLine("BenchmarkBroken notanumber"); ok {
		t.Fatal("accepted a non-numeric iteration count")
	}
}
