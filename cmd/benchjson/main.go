// Command benchjson converts `go test -bench` text output into a JSON
// document, one record per benchmark result. It reads stdin and writes
// stdout, so it composes with any bench invocation:
//
//	go test -bench=. -benchmem -run '^$' . | go run ./cmd/benchjson > BENCH_results.json
//
// Each record carries the benchmark name (GOMAXPROCS suffix stripped),
// the iteration count, and every reported metric (ns/op, B/op,
// allocs/op, and custom b.ReportMetric units) keyed by unit.
//
// With -baseline FILE, a second bench output is parsed from FILE and the
// document additionally carries the baseline results and per-benchmark
// before/after deltas (time speedup and allocation counts), so a single
// BENCH_results.json records an optimization's full trajectory:
//
//	go test -bench=. -benchmem -run '^$' . | \
//	    go run ./cmd/benchjson -baseline bench/baseline.txt > BENCH_results.json
//
// With -live FILE[,FILE...], loadgen JSON summaries (cmd/loadgen) are
// folded into the document as LiveCluster/<mode> results, so the same
// BENCH_results.json carries both microbenchmarks and end-to-end
// cluster throughput/latency numbers.
//
// With -tournament FILE, the policy-tournament CSV written by
// `msbench -experiment tournament -csv DIR` is folded in as a
// Tournament section, one record per (profile, load, policy) cell, so
// the report also carries the head-to-head policy comparison:
//
//	go run ./cmd/msbench -experiment tournament -quick -csv bench
//	go test -bench=. -benchmem -run '^$' . | \
//	    go run ./cmd/benchjson -tournament bench/policy-tournament.csv > BENCH_results.json
//
// With -autoscale FILE, the autoscaling-study CSV written by
// `msbench -experiment autoscale -csv DIR` is folded in as an Autoscale
// section, one record per (workload, scenario) row, carrying the
// node-hours saved and SLO attainment of the autoscaled fleet against
// the fixed one.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// ReqS is the aggregate-throughput headline: the best whole-process
	// req/s among the folded-in fast-mode (uncalibrated) loadgen runs.
	// On a multi-core run this is the number that matters; ReqSPerCore
	// remains the cross-machine normalizer (best per-core throughput
	// among the same runs, where the data plane itself is the bottleneck
	// rather than emulated service times).
	ReqS        float64            `json:"req_s,omitempty"`
	ReqSPerCore float64            `json:"req_s_per_core,omitempty"`
	Results     []Result           `json:"results"`
	Live        []Result           `json:"live,omitempty"`
	Scaling     *ScalingReport     `json:"scaling,omitempty"`
	Tournament  []TournamentResult `json:"tournament,omitempty"`
	Autoscale   []AutoscaleResult  `json:"autoscale,omitempty"`
	Baseline    []Result           `json:"baseline,omitempty"`
	Deltas      []Delta            `json:"deltas,omitempty"`
}

// ScalingReport is the cores→throughput curve folded in from a loadgen
// -scaling-sweep summary, with speedup and parallel efficiency computed
// relative to the narrowest completed point.
type ScalingReport struct {
	Points []ScalingResult `json:"points"`
	// PeakCores/PeakReqS locate the best completed point;
	// ParallelEfficiency is the widest completed point's speedup over
	// the narrowest, divided by the core ratio (1.0 = perfect scaling).
	PeakCores          int     `json:"peak_cores,omitempty"`
	PeakReqS           float64 `json:"peak_req_s,omitempty"`
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`
}

// ScalingResult is one width of the sweep.
type ScalingResult struct {
	Cores       int     `json:"cores"`
	Skipped     bool    `json:"skipped,omitempty"`
	Reason      string  `json:"reason,omitempty"`
	ReqS        float64 `json:"req_s,omitempty"`
	ReqSPerCore float64 `json:"req_s_per_core,omitempty"`
	P99S        float64 `json:"p99_s,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	Efficiency  float64 `json:"efficiency,omitempty"`
}

// TournamentResult is one (profile, load, policy) cell of the policy
// tournament, mirroring the CSV msbench emits.
type TournamentResult struct {
	Profile  string  `json:"profile"`
	Rho      float64 `json:"rho"`
	Policy   string  `json:"policy"`
	MeanMs   float64 `json:"mean_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Stretch  float64 `json:"stretch"`
	CPUUtil  float64 `json:"cpu_util"`
	ShedRate float64 `json:"shed_rate"`
}

// tournamentResults parses the policy-tournament CSV. Columns are
// located by header name so reordering stays harmless.
func tournamentResults(path string) ([]TournamentResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("%s: no tournament rows", path)
	}
	col := map[string]int{}
	for i, name := range records[0] {
		col[name] = i
	}
	for _, name := range []string{"profile", "rho", "policy", "mean_ms", "p99_ms", "stretch", "cpu_util", "shed_rate"} {
		if _, ok := col[name]; !ok {
			return nil, fmt.Errorf("%s: not a tournament CSV (missing %q column)", path, name)
		}
	}
	num := func(rec []string, name string) float64 {
		v, _ := strconv.ParseFloat(rec[col[name]], 64)
		return v
	}
	out := make([]TournamentResult, 0, len(records)-1)
	for _, rec := range records[1:] {
		out = append(out, TournamentResult{
			Profile:  rec[col["profile"]],
			Rho:      num(rec, "rho"),
			Policy:   rec[col["policy"]],
			MeanMs:   num(rec, "mean_ms"),
			P99Ms:    num(rec, "p99_ms"),
			Stretch:  num(rec, "stretch"),
			CPUUtil:  num(rec, "cpu_util"),
			ShedRate: num(rec, "shed_rate"),
		})
	}
	return out, nil
}

// AutoscaleResult is one (workload, scenario) row of the autoscaling
// study, mirroring the CSV msbench emits.
type AutoscaleResult struct {
	Workload  string  `json:"workload"`
	Scenario  string  `json:"scenario"`
	Stretch   float64 `json:"stretch"`
	SLO       float64 `json:"slo_attainment"`
	NodeHours float64 `json:"node_hours"`
	SavedPct  float64 `json:"saved_pct"`
	SlaveOffs int64   `json:"slave_offs"`
	Epochs    int64   `json:"epochs"`
}

// autoscaleResults parses the autoscale-study CSV (header-addressed,
// like tournamentResults).
func autoscaleResults(path string) ([]AutoscaleResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("%s: no autoscale rows", path)
	}
	col := map[string]int{}
	for i, name := range records[0] {
		col[name] = i
	}
	for _, name := range []string{"workload", "scenario", "stretch", "slo_attainment", "node_hours", "saved_pct", "slave_offs", "epochs"} {
		if _, ok := col[name]; !ok {
			return nil, fmt.Errorf("%s: not an autoscale CSV (missing %q column)", path, name)
		}
	}
	num := func(rec []string, name string) float64 {
		v, _ := strconv.ParseFloat(rec[col[name]], 64)
		return v
	}
	out := make([]AutoscaleResult, 0, len(records)-1)
	for _, rec := range records[1:] {
		out = append(out, AutoscaleResult{
			Workload:  rec[col["workload"]],
			Scenario:  rec[col["scenario"]],
			Stretch:   num(rec, "stretch"),
			SLO:       num(rec, "slo_attainment"),
			NodeHours: num(rec, "node_hours"),
			SavedPct:  num(rec, "saved_pct"),
			SlaveOffs: int64(num(rec, "slave_offs")),
			Epochs:    int64(num(rec, "epochs")),
		})
	}
	return out, nil
}

// liveSummary mirrors the fields of cmd/loadgen's Summary that the
// report folds in (decoding stays tolerant of extra fields).
type liveSummary struct {
	Mode          string  `json:"mode"`
	Profile       string  `json:"profile"`
	Fast          bool    `json:"fast"`
	Frame         bool    `json:"frame"`
	FrameClient   bool    `json:"frame_client"`
	Shards        int     `json:"shards"`
	Sent          int64   `json:"sent"`
	OK            int64   `json:"ok"`
	Errors        int64   `json:"errors"`
	Shed          int64   `json:"shed"`
	Exhausted     int64   `json:"exhausted"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Cores         int     `json:"cores"`
	ReqSPerCore   float64 `json:"req_s_per_core"`
	Scaling       []struct {
		Cores       int     `json:"cores"`
		Skipped     bool    `json:"skipped"`
		Reason      string  `json:"reason"`
		ReqS        float64 `json:"req_s"`
		ReqSPerCore float64 `json:"req_s_per_core"`
		P99S        float64 `json:"p99_s"`
	} `json:"scaling"`
	Latency struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency"`
	Corrected *struct {
		P99 float64 `json:"p99"`
	} `json:"corrected"`
	Chaos *struct {
		Seed         int64 `json:"seed"`
		Events       int64 `json:"events"`
		FaultedNodes int64 `json:"faulted_nodes"`
		BreakerOpens int64 `json:"breaker_opens"`
		Failovers    int64 `json:"failovers"`
		Retries      int64 `json:"retries"`
	} `json:"chaos"`
}

// liveHeadline carries the figures liveResults extracts beyond the
// per-run records: the per-core and aggregate throughput headlines and
// the cores→throughput curve of any -scaling-sweep summary.
type liveHeadline struct {
	perCore   float64
	aggregate float64
	scaling   *ScalingReport
}

// liveResults converts loadgen summary files into pseudo-benchmark
// results named LiveCluster/<mode>, with Iterations carrying the
// request count and the latency quantiles keyed by unit-style names.
// Fast-mode (uncalibrated) runs are named apart with a /fast suffix and
// the best of them supplies the report's headlines: req_s (aggregate,
// the figure that matters on multi-core runs) and req_s_per_core (the
// cross-machine normalizer).
func liveResults(paths []string) ([]Result, liveHeadline, error) {
	var out []Result
	var hl liveHeadline
	for _, path := range paths {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, hl, err
		}
		var s liveSummary
		if err := json.Unmarshal(buf, &s); err != nil {
			return nil, hl, fmt.Errorf("%s: %w", path, err)
		}
		if s.Mode == "" {
			return nil, hl, fmt.Errorf("%s: not a loadgen summary (no mode)", path)
		}
		name := "LiveCluster/" + s.Mode
		if s.Fast {
			name += "/fast"
			if s.ReqSPerCore > hl.perCore {
				hl.perCore = s.ReqSPerCore
			}
			if s.ThroughputRPS > hl.aggregate {
				hl.aggregate = s.ThroughputRPS
			}
		}
		if s.FrameClient {
			name += "/frameclient"
		}
		if len(s.Scaling) > 0 {
			name += "/scaling"
			if sr := scalingReport(&s); sr != nil {
				hl.scaling = sr
			}
		}
		// A sharded control plane is a distinct experiment: name it apart
		// so the global-view and sharded runs of one mode can coexist.
		if s.Shards > 1 {
			name += "/sharded"
		}
		r := Result{
			Name:       name,
			Iterations: s.Sent,
			Metrics: map[string]float64{
				"throughput_rps": s.ThroughputRPS,
				"errors":         float64(s.Errors),
				"latency_p50_s":  s.Latency.P50,
				"latency_p95_s":  s.Latency.P95,
				"latency_p99_s":  s.Latency.P99,
				"latency_mean_s": s.Latency.Mean,
				"latency_max_s":  s.Latency.Max,
			},
		}
		if s.Cores > 0 {
			r.Metrics["cores"] = float64(s.Cores)
			r.Metrics["req_s_per_core"] = s.ReqSPerCore
		}
		if s.Frame {
			r.Metrics["frame"] = 1
		}
		if s.Shards > 1 {
			r.Metrics["shards"] = float64(s.Shards)
		}
		if s.Corrected != nil {
			r.Metrics["corrected_p99_s"] = s.Corrected.P99
		}
		// A chaos run is a distinct experiment: name it apart so a plain
		// and a chaos summary of the same mode can coexist in one report.
		if s.Chaos != nil {
			r.Name += "/chaos"
			r.Metrics["shed"] = float64(s.Shed)
			r.Metrics["exhausted"] = float64(s.Exhausted)
			r.Metrics["chaos_seed"] = float64(s.Chaos.Seed)
			r.Metrics["chaos_events"] = float64(s.Chaos.Events)
			r.Metrics["chaos_faulted_nodes"] = float64(s.Chaos.FaultedNodes)
			r.Metrics["chaos_breaker_opens"] = float64(s.Chaos.BreakerOpens)
			r.Metrics["chaos_failovers"] = float64(s.Chaos.Failovers)
			r.Metrics["chaos_retries"] = float64(s.Chaos.Retries)
		}
		out = append(out, r)
	}
	return out, hl, nil
}

// scalingReport folds one summary's sweep points into the report's
// scaling section, computing speedup and parallel efficiency relative
// to the narrowest completed width. Skipped points (widths the machine
// could not provide) are carried through so the curve keeps the shape
// the sweep asked for.
func scalingReport(s *liveSummary) *ScalingReport {
	sr := &ScalingReport{}
	baseCores, baseReqS := 0, 0.0
	for _, p := range s.Scaling {
		pt := ScalingResult{
			Cores: p.Cores, Skipped: p.Skipped, Reason: p.Reason,
			ReqS: p.ReqS, ReqSPerCore: p.ReqSPerCore, P99S: p.P99S,
		}
		if !p.Skipped && p.ReqS > 0 {
			if baseCores == 0 {
				baseCores, baseReqS = p.Cores, p.ReqS
			}
			pt.Speedup = p.ReqS / baseReqS
			pt.Efficiency = pt.Speedup / (float64(p.Cores) / float64(baseCores))
			if p.ReqS > sr.PeakReqS {
				sr.PeakCores, sr.PeakReqS = p.Cores, p.ReqS
			}
			// The widest completed point's efficiency is the headline.
			sr.ParallelEfficiency = pt.Efficiency
		}
		sr.Points = append(sr.Points, pt)
	}
	if baseCores == 0 {
		return nil // every point skipped: no curve to report
	}
	return sr
}

// Delta compares one benchmark between the baseline and current runs.
// Speedup is baseline ns/op over current ns/op (2 means twice as fast);
// allocation counts are carried as raw values because a reduction to
// zero has no finite ratio.
type Delta struct {
	Name       string  `json:"name"`
	NsBaseline float64 `json:"ns_baseline"`
	NsCurrent  float64 `json:"ns_current"`
	Speedup    float64 `json:"speedup"`
	AllocsOld  float64 `json:"allocs_baseline"`
	AllocsNew  float64 `json:"allocs_current"`
}

func main() {
	baseline := flag.String("baseline", "", "bench output file to diff the stdin run against")
	live := flag.String("live", "", "comma-separated loadgen JSON summaries to fold in")
	tournament := flag.String("tournament", "", "policy-tournament CSV (msbench -experiment tournament -csv DIR) to fold in")
	autoscale := flag.String("autoscale", "", "autoscale-study CSV (msbench -experiment autoscale -csv DIR) to fold in")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *tournament != "" {
		tr, err := tournamentResults(*tournament)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.Tournament = tr
	}
	if *autoscale != "" {
		ar, err := autoscaleResults(*autoscale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.Autoscale = ar
	}
	if *live != "" {
		lr, hl, err := liveResults(strings.Split(*live, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.Live = lr
		rep.ReqSPerCore = hl.perCore
		rep.ReqS = hl.aggregate
		rep.Scaling = hl.scaling
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base, err := parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rep.Baseline = base.Results
		rep.Deltas = diff(base.Results, rep.Results)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// diff pairs baseline and current results by name.
func diff(base, cur []Result) []Delta {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var deltas []Delta
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		d := Delta{
			Name:       c.Name,
			NsBaseline: b.Metrics["ns/op"],
			NsCurrent:  c.Metrics["ns/op"],
			AllocsOld:  b.Metrics["allocs/op"],
			AllocsNew:  c.Metrics["allocs/op"],
		}
		if d.NsCurrent > 0 {
			d.Speedup = d.NsBaseline / d.NsCurrent
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// parse scans bench output, keeping the environment header and every
// Benchmark line; all other lines (PASS, ok, test logs) pass through
// unparsed.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine decodes one "BenchmarkName-P  N  v unit  v unit ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	res := Result{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
