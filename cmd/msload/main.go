// Command msload replays a trace file against a running mscluster and
// reports the measured stretch factor.
//
// Usage:
//
//	mstrace -profile ADL -lambda 30 -n 600 -muh 110 > adl.trace
//	msload -masters http://127.0.0.1:40001 -trace adl.trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"msweb/internal/replay"
	"msweb/internal/trace"
	"msweb/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "msload:", err)
		os.Exit(1)
	}
}

// run parses args, replays the trace, and prints the report. Split from
// main for testability.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("msload", flag.ContinueOnError)
	masters := fs.String("masters", "", "comma-separated master base URLs")
	traceFile := fs.String("trace", "", "trace file to replay (from mstrace)")
	scale := fs.Float64("timescale", 1, "interval/demand scale (must match the cluster)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request timeout")
	conc := fs.Int("concurrency", 0, "max in-flight requests (0 = unlimited)")
	frame := fs.Bool("frame", false, "drive masters over the persistent binary frame transport instead of HTTP")
	closed := fs.Bool("closed", false, "closed-loop mode: generate sessions instead of replaying a trace")
	profile := fs.String("profile", "KSU", "session profile for -closed (UCB, KSU, ADL)")
	sessionsN := fs.Int("sessions", 50, "session count for -closed")
	sessionRate := fs.Float64("session-rate", 5, "session arrival rate for -closed (sessions/second)")
	meanReqs := fs.Float64("mean-requests", 8, "mean requests per session for -closed")
	think := fs.Float64("think", 1, "mean think time for -closed (seconds)")
	muH := fs.Float64("muh", 110, "node static capability for -closed demand calibration")
	r := fs.Float64("r", 1.0/40, "service ratio for -closed demand calibration")
	seed := fs.Int64("seed", 1, "generation seed for -closed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *masters == "" {
		return fmt.Errorf("-masters is required")
	}
	if *closed {
		prof, ok := trace.ProfileByName(*profile)
		if !ok {
			return fmt.Errorf("unknown profile %q", *profile)
		}
		sessions, err := workload.Generate(workload.Config{
			Profile:      prof,
			Sessions:     *sessionsN,
			SessionRate:  *sessionRate,
			MeanRequests: *meanReqs,
			MeanThink:    *think,
			MuH:          *muH,
			R:            *r,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
		res, err := replay.RunClosed(context.Background(), strings.Split(*masters, ","), sessions, replay.Options{
			TimeScale: *scale,
			Timeout:   *timeout,
			Frames:    *frame,
		})
		if err != nil {
			return err
		}
		printReport(stdout, res)
		return nil
	}
	if *traceFile == "" {
		return fmt.Errorf("-trace is required (or use -closed)")
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	urls := strings.Split(*masters, ",")
	res, err := replay.Run(context.Background(), urls, tr, replay.Options{
		TimeScale:   *scale,
		Timeout:     *timeout,
		Concurrency: *conc,
		Frames:      *frame,
	})
	if err != nil {
		return err
	}

	printReport(stdout, res)
	return nil
}

// printReport renders the replay summary.
func printReport(stdout io.Writer, res *replay.Result) {
	s := res.Summary
	fmt.Fprintf(stdout, "replayed %d requests in %.1fs (%d failed)\n", res.Sent, res.Duration.Seconds(), res.Failed)
	fmt.Fprintf(stdout, "stretch factor:   %.3f\n", s.StretchFactor)
	fmt.Fprintf(stdout, "mean response:    %.4f s\n", s.MeanResponse)
	fmt.Fprintf(stdout, "p50/p95/p99 stretch: %.2f / %.2f / %.2f\n", s.P50Stretch, s.P95Stretch, s.P99Stretch)
	for _, class := range []string{"static", "dynamic", "cached"} {
		if cs, ok := s.ByClass[class]; ok {
			fmt.Fprintf(stdout, "%-8s n=%-7d SF=%.3f meanResp=%.4fs\n", class, cs.Count, cs.StretchFactor, cs.MeanResponse)
		}
	}
}
