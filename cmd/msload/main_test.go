package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
	"msweb/internal/trace"
)

func writeTrace(t *testing.T, n int) string {
	t.Helper()
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: 60, Requests: n, MuH: 110, R: 1.0 / 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "load.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMsloadEndToEnd(t *testing.T) {
	cfg := httpcluster.DefaultConfig(1, func(id int) core.Policy {
		return core.NewMS(nil, int64(id)+1)
	})
	cfg.Nodes = 3
	cfg.TimeScale = 0.2
	cfg.LoadRefresh = 25 * time.Millisecond
	cfg.PolicyTick = 50 * time.Millisecond
	c, err := httpcluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	path := writeTrace(t, 60)
	var out bytes.Buffer
	err = run([]string{
		"-masters", c.MasterURLs()[0],
		"-trace", path,
		"-timescale", "0.2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "replayed 60 requests") {
		t.Fatalf("report missing replay line:\n%s", text)
	}
	if !strings.Contains(text, "stretch factor:") || !strings.Contains(text, "static") {
		t.Fatalf("report incomplete:\n%s", text)
	}
	if strings.Contains(text, "(60 failed)") {
		t.Fatalf("all requests failed:\n%s", text)
	}
}

func TestMsloadErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-masters", "http://x", "-trace", "/nope"}, &out); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestMsloadClosedLoop(t *testing.T) {
	cfg := httpcluster.DefaultConfig(1, func(id int) core.Policy {
		return core.NewMS(nil, int64(id)+1)
	})
	cfg.Nodes = 3
	cfg.TimeScale = 0.2
	cfg.LoadRefresh = 25 * time.Millisecond
	cfg.PolicyTick = 50 * time.Millisecond
	c, err := httpcluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	var out bytes.Buffer
	err = run([]string{
		"-masters", c.MasterURLs()[0],
		"-closed", "-sessions", "10", "-session-rate", "50",
		"-mean-requests", "3", "-think", "0.02",
		"-timescale", "0.2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stretch factor:") {
		t.Fatalf("closed-loop report missing:\n%s", out.String())
	}
	if strings.Contains(out.String(), "replayed 0 requests") {
		t.Fatalf("nothing replayed:\n%s", out.String())
	}
}
