// Command mscluster boots a live master/slave Web cluster on loopback
// and prints the master URLs. Drive it with cmd/msload.
//
// Usage:
//
//	mscluster -nodes 6 -masters 3 -policy ms
//	mscluster -nodes 6 -masters 2 -fast -frame -batch 200us
//	mscluster -admission-policy open -routing-policy jsq2 -scheduling-policy fcfs
//	mscluster -list-policies
//
// The policy surface is the shared registry (internal/policy): -policy
// selects a preset; the -admission-policy/-routing-policy/
// -routing-scorers/-scheduling-policy stage flags assemble a custom
// pipeline instead; -list-policies prints the catalog.
//
// -fast runs the slaves uncalibrated (virtual-time demand accounting,
// no wall-clock sleeps); -frame dispatches master→slave over the
// persistent binary frame transport; -batch adds a coalescing window
// so concurrent requests for one slave share frames.
//
// The process serves until interrupted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
	"msweb/internal/policy"
)

// errListed signals the -list-policies print-and-exit path.
var errListed = errors.New("listed policies")

func main() {
	cfg, err := buildConfig(os.Args[1:])
	if errors.Is(err, errListed) {
		fmt.Print(policy.ListText())
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mscluster:", err)
		os.Exit(2)
	}
	c, err := httpcluster.Start(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mscluster:", err)
		os.Exit(1)
	}
	defer c.Shutdown()
	printBanner(os.Stdout, cfg, c)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
}

// buildConfig turns command-line flags into a cluster configuration.
// Split from main for testability.
func buildConfig(args []string) (httpcluster.Config, error) {
	fs := flag.NewFlagSet("mscluster", flag.ContinueOnError)
	nodes := fs.Int("nodes", 6, "cluster size")
	masters := fs.Int("masters", 2, "number of master nodes")
	var pf policy.Flags
	pf.Register(fs)
	scale := fs.Float64("timescale", 1, "duration scale factor (1 = real time)")
	refresh := fs.Duration("refresh", 100*time.Millisecond, "load polling period")
	seed := fs.Int64("seed", 1, "policy randomization seed")
	fast := fs.Bool("fast", false, "run uncalibrated: virtual-time demand accounting, no wall-clock sleeps")
	frame := fs.Bool("frame", false, "dispatch master→slave over the persistent binary frame transport")
	batch := fs.Duration("batch", 0, "coalescing window for batched dispatch over frames (0: off; implies -frame)")
	shards := fs.Int("shards", 0, "partition the slave tier across the masters (must equal -masters; 0/1 = global view)")
	shardMap := fs.String("shard-map", "", "shard partitioning function: hash (default) or static")
	gossip := fs.Duration("gossip", 0, "master↔master shard-summary pull period (0 = 4×refresh)")
	if err := fs.Parse(args); err != nil {
		return httpcluster.Config{}, err
	}
	if pf.List {
		return httpcluster.Config{}, errListed
	}

	build, err := pf.Resolve()
	if err != nil {
		return httpcluster.Config{}, err
	}
	cfg := httpcluster.DefaultConfig(*masters, func(id int) core.Policy {
		return build(nil, *seed+int64(id))
	})
	cfg.Nodes = *nodes
	cfg.TimeScale = *scale
	cfg.LoadRefresh = *refresh
	cfg.Discipline = pf.Scheduling
	cfg.Uncalibrated = *fast
	cfg.BinaryFraming = *frame || *batch > 0
	cfg.BatchWindow = *batch
	cfg.Shards = *shards
	cfg.ShardMapMode = *shardMap
	cfg.GossipEvery = *gossip
	return cfg, cfg.Validate()
}

// printBanner announces the running cluster.
func printBanner(w io.Writer, cfg httpcluster.Config, c *httpcluster.Cluster) {
	fmt.Fprintf(w, "cluster up: %d nodes, %d masters\n", cfg.Nodes, cfg.Masters)
	urls := c.MasterURLs()
	for i, url := range urls {
		fmt.Fprintf(w, "master %d: %s\n", i, url)
	}
	fmt.Fprintln(w, "send traffic with: msload -masters <url,url,...> -trace <file>")
	if len(urls) > 0 {
		fmt.Fprintf(w, "scrape metrics with: curl %s/metrics (every node serves /metrics)\n", urls[0])
	}
}
