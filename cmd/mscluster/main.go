// Command mscluster boots a live master/slave Web cluster on loopback
// and prints the master URLs. Drive it with cmd/msload.
//
// Usage:
//
//	mscluster -nodes 6 -masters 3 -policy ms
//	mscluster -nodes 6 -masters 2 -fast -frame -batch 200us
//	mscluster -admission-policy open -routing-policy jsq2 -scheduling-policy fcfs
//	mscluster -list-policies
//
// The policy surface is the shared registry (internal/policy): -policy
// selects a preset; the -admission-policy/-routing-policy/
// -routing-scorers/-scheduling-policy stage flags assemble a custom
// pipeline instead; -list-policies prints the catalog.
//
// -fast runs the slaves uncalibrated (virtual-time demand accounting,
// no wall-clock sleeps); -frame dispatches master→slave over the
// persistent binary frame transport; -batch adds a coalescing window
// so concurrent requests for one slave share frames.
//
// The process serves until interrupted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
	"msweb/internal/policy"
)

// errListed signals the -list-policies print-and-exit path.
var errListed = errors.New("listed policies")

// profileFlags holds the -mutexprofile/-blockprofile destinations; the
// profiles are captured for the whole serving lifetime and written at
// shutdown.
var profileFlags struct{ mutex, block string }

func main() {
	cfg, err := buildConfig(os.Args[1:])
	if errors.Is(err, errListed) {
		fmt.Print(policy.ListText())
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mscluster:", err)
		os.Exit(2)
	}
	if profileFlags.mutex != "" {
		runtime.SetMutexProfileFraction(100)
		defer writeProfile("mutex", profileFlags.mutex)
	}
	if profileFlags.block != "" {
		runtime.SetBlockProfileRate(100_000) // one sample per 100µs blocked
		defer writeProfile("block", profileFlags.block)
	}
	c, err := httpcluster.Start(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mscluster:", err)
		os.Exit(1)
	}
	defer c.Shutdown()
	printBanner(os.Stdout, cfg, c)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
}

// writeProfile dumps a runtime profile family (mutex, block) to path;
// failures are reported but never change the exit status.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mscluster: %s profile: %v\n", name, err)
		return
	}
	defer f.Close()
	p := pprof.Lookup(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "mscluster: no %s profile\n", name)
		return
	}
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "mscluster: %s profile: %v\n", name, err)
	}
}

// buildConfig turns command-line flags into a cluster configuration.
// Split from main for testability.
func buildConfig(args []string) (httpcluster.Config, error) {
	fs := flag.NewFlagSet("mscluster", flag.ContinueOnError)
	nodes := fs.Int("nodes", 6, "cluster size")
	masters := fs.Int("masters", 2, "number of master nodes")
	var pf policy.Flags
	pf.Register(fs)
	scale := fs.Float64("timescale", 1, "duration scale factor (1 = real time)")
	refresh := fs.Duration("refresh", 100*time.Millisecond, "load polling period")
	seed := fs.Int64("seed", 1, "policy randomization seed")
	fast := fs.Bool("fast", false, "run uncalibrated: virtual-time demand accounting, no wall-clock sleeps")
	frame := fs.Bool("frame", false, "dispatch master→slave over the persistent binary frame transport")
	batch := fs.Duration("batch", 0, "coalescing window for batched dispatch over frames (0: off; implies -frame)")
	lshards := fs.Int("listener-shards", 0, "SO_REUSEPORT accept sockets per node (0/1: single listener)")
	shards := fs.Int("shards", 0, "partition the slave tier across the masters (must equal -masters; 0/1 = global view)")
	shardMap := fs.String("shard-map", "", "shard partitioning function: hash (default) or static")
	gossip := fs.Duration("gossip", 0, "master↔master shard-summary pull period (0 = 4×refresh)")
	autoscale := fs.Duration("autoscale-masters", 0, "live master-tier autoscaler period (0: off; needs -shards)")
	fs.StringVar(&profileFlags.mutex, "mutexprofile", "", "write a mutex-contention profile to this file at shutdown")
	fs.StringVar(&profileFlags.block, "blockprofile", "", "write a goroutine-blocking profile to this file at shutdown")
	if err := fs.Parse(args); err != nil {
		return httpcluster.Config{}, err
	}
	if pf.List {
		return httpcluster.Config{}, errListed
	}

	build, err := pf.Resolve()
	if err != nil {
		return httpcluster.Config{}, err
	}
	cfg := httpcluster.DefaultConfig(*masters, func(id int) core.Policy {
		return build(nil, *seed+int64(id))
	})
	cfg.Nodes = *nodes
	cfg.TimeScale = *scale
	cfg.LoadRefresh = *refresh
	cfg.Discipline = pf.Scheduling
	cfg.Uncalibrated = *fast
	cfg.BinaryFraming = *frame || *batch > 0
	cfg.BatchWindow = *batch
	cfg.ListenerShards = *lshards
	cfg.Shards = *shards
	cfg.ShardMapMode = *shardMap
	cfg.GossipEvery = *gossip
	cfg.AutoscaleMasters = *autoscale
	return cfg, cfg.Validate()
}

// printBanner announces the running cluster.
func printBanner(w io.Writer, cfg httpcluster.Config, c *httpcluster.Cluster) {
	fmt.Fprintf(w, "cluster up: %d nodes, %d masters\n", cfg.Nodes, cfg.Masters)
	urls := c.MasterURLs()
	for i, url := range urls {
		fmt.Fprintf(w, "master %d: %s\n", i, url)
	}
	fmt.Fprintln(w, "send traffic with: msload -masters <url,url,...> -trace <file>")
	if len(urls) > 0 {
		fmt.Fprintf(w, "scrape metrics with: curl %s/metrics (every node serves /metrics)\n", urls[0])
	}
}
