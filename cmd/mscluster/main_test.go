package main

import (
	"bytes"
	"errors"
	"net/http"
	"strings"
	"testing"

	"msweb/internal/httpcluster"
	"msweb/internal/policy"
)

func TestBuildConfigDefaults(t *testing.T) {
	cfg, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 6 || cfg.Masters != 2 {
		t.Fatalf("defaults: %d nodes, %d masters", cfg.Nodes, cfg.Masters)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "weird"},
		{"-nodes", "0"},
		{"-masters", "9", "-nodes", "2"},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, err := buildConfig(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestAllPoliciesConstruct(t *testing.T) {
	// Every registry preset (the old policyFactory names included) must
	// yield a working cluster configuration through the unified flags.
	for _, name := range policy.Names() {
		cfg, err := buildConfig([]string{"-policy", name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p := cfg.MakePolicy(0); p == nil || p.Name() == "" {
			t.Fatalf("%s: bad policy instance", name)
		}
	}
}

func TestCustomPipelineFlags(t *testing.T) {
	cfg, err := buildConfig([]string{
		"-admission-policy", "open",
		"-routing-policy", "scorers",
		"-routing-scorers", "rsrc:1,qlen:0.25",
		"-scheduling-policy", "fcfs",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Discipline != "fcfs" {
		t.Fatalf("discipline %q not forwarded", cfg.Discipline)
	}
	if p := cfg.MakePolicy(0); p == nil || p.Name() == "" {
		t.Fatal("custom pipeline did not construct")
	}
}

func TestListPolicies(t *testing.T) {
	if _, err := buildConfig([]string{"-list-policies"}); !errors.Is(err, errListed) {
		t.Fatalf("want errListed, got %v", err)
	}
}

func TestClusterBootsAndServes(t *testing.T) {
	cfg, err := buildConfig([]string{"-nodes", "3", "-masters", "1", "-timescale", "0.25"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := httpcluster.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	var banner bytes.Buffer
	printBanner(&banner, cfg, c)
	if !strings.Contains(banner.String(), "cluster up: 3 nodes, 1 masters") {
		t.Fatalf("banner:\n%s", banner.String())
	}

	resp, err := http.Get(c.MasterURLs()[0] + "/req?class=s&demand=0.001&w=0.3&script=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
