// Command loadgen drives a live msweb cluster with synthetic load and
// reports client-side latency quantiles as JSON.
//
// Two drive modes:
//
//   - open (-mode open -rps R): requests fire on a Poisson schedule at
//     R req/s regardless of how fast responses come back. Latency is
//     measured from each request's *scheduled* start, so queueing delay
//     caused by a slow server is charged to the server — the classic
//     coordinated-omission-safe arrangement. This is the mode whose
//     numbers correspond to an arrival process hitting a public site.
//
//   - closed (-mode closed -concurrency C): C workers issue requests
//     back-to-back, the shape of a fixed browser population. Raw
//     latencies understate tails under stalls (the stalled worker stops
//     sampling — coordinated omission), so when a target rate is also
//     given (-rps) each worker paces at C/R seconds per request and a
//     second, corrected histogram back-fills the hidden samples via
//     obs.Histogram.ObserveCoordinated.
//
// The request mix comes from the paper's trace profiles
// (trace.GenConfig): -profile selects the class mix and size
// distributions, -muh and -r calibrate demands exactly as the simulator
// does. With no -targets, loadgen boots its own loopback cluster
// (-nodes/-masters/-timescale) so `go run ./cmd/loadgen` benchmarks the
// live data plane end to end with zero setup.
//
// With -fast (self-hosted cluster only), the cluster runs uncalibrated:
// service demands are charged to virtual clocks instead of wall-clock
// sleeps, so the run measures the data plane's own overhead — parse,
// placement, dispatch, transport — rather than the emulated service
// times. -frame switches master→slave dispatch to the persistent binary
// frame transport (with HTTP fallback negotiation), and -batch adds a
// coalescing window so concurrent requests for one slave share frames.
// The summary reports cores and req_s_per_core so fast-mode numbers are
// comparable across machine sizes.
//
// With -chaos (self-hosted cluster only), a seeded randomized fault
// schedule (internal/chaos) cycles the cluster's slaves through kills,
// pauses, injected latency and slow-loris while the load runs; the
// summary then separates deliberate shedding (503) and retry exhaustion
// (502) from transport errors and reports the breaker/failover counters
// the faults provoked.
//
// The self-hosted cluster's scheduling policy comes from the shared
// registry (internal/policy): -policy selects a preset, the
// -admission-policy/-routing-policy/-routing-scorers/-scheduling-policy
// stage flags assemble a custom pipeline, and -list-policies prints the
// catalog. -tournament runs the same load against a fresh self-hosted
// cluster per preset ("competitors" = the registry's competitor field)
// and reports one summary entry per policy, so the live plane replays
// the simulator's head-to-head comparison.
//
// Usage:
//
//	loadgen -mode open -rps 200 -n 2000 -profile KSU -timescale 0.05
//	loadgen -mode closed -concurrency 8 -rps 100 -n 1000 -out results/closed.json
//	loadgen -mode closed -concurrency 8 -n 2000 -chaos -chaos-seed 7 -nodes 6 -masters 2
//	loadgen -tournament competitors -fast -n 2000 -concurrency 16
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msweb/internal/chaos"
	"msweb/internal/core"
	"msweb/internal/httpcluster"
	"msweb/internal/obs"
	"msweb/internal/policy"
	"msweb/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// LatencyStats is the JSON shape of one latency distribution (seconds).
type LatencyStats struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func statsOf(h *obs.Histogram) LatencyStats {
	return LatencyStats{
		P50:  h.Quantile(0.50),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		Mean: h.Mean(),
		Max:  h.Max(),
	}
}

// Summary is loadgen's JSON report.
type Summary struct {
	Mode           string   `json:"mode"`
	Profile        string   `json:"profile"`
	Targets        []string `json:"targets"`
	Requests       int      `json:"requests"`
	Fast           bool     `json:"fast,omitempty"`
	Frame          bool     `json:"frame,omitempty"`
	FrameClient    bool     `json:"frame_client,omitempty"`
	Shards         int      `json:"shards,omitempty"`
	ListenerShards int      `json:"listener_shards,omitempty"`
	BatchWindowS   float64  `json:"batch_window_s,omitempty"`
	Sent           int64    `json:"sent"`
	OK             int64    `json:"ok"`
	Errors         int64    `json:"errors"`
	Shed           int64    `json:"shed,omitempty"`
	Exhausted      int64    `json:"exhausted,omitempty"`
	DurationS      float64  `json:"duration_s"`
	ThroughputRPS  float64  `json:"throughput_rps"`
	// ReqS is the aggregate throughput (same number as ThroughputRPS,
	// under the name the multi-core scaling harness reports): on a
	// multi-core run the aggregate is the headline, with ReqSPerCore as
	// the cross-machine normalizer.
	ReqS float64 `json:"req_s"`
	// Cores and ReqSPerCore normalize throughput for cross-machine
	// comparison: the single-core 100k req/s headline is stated per core.
	Cores       int          `json:"cores"`
	ReqSPerCore float64      `json:"req_s_per_core"`
	TargetRPS   float64      `json:"target_rps,omitempty"`
	Concurrency int          `json:"concurrency,omitempty"`
	Latency     LatencyStats `json:"latency"`
	// Corrected is present in closed mode with pacing (-rps): the same
	// samples plus HdrHistogram-style coordinated-omission back-fill.
	Corrected *LatencyStats `json:"corrected,omitempty"`
	// Chaos is present with -chaos: the fault schedule's shape and the
	// cluster-side resilience counters it provoked.
	Chaos *ChaosSummary `json:"chaos,omitempty"`
	// Tournament is present with -tournament: one entry per policy
	// preset, each measured against a fresh self-hosted cluster replaying
	// the identical request mix.
	Tournament []TournamentEntry `json:"tournament,omitempty"`
	// Scaling is present with -scaling-sweep: the cores→aggregate-req/s
	// curve, one point per requested GOMAXPROCS width (points wider than
	// the machine are marked skipped, never failed).
	Scaling []ScalingPoint `json:"scaling,omitempty"`
}

// TournamentEntry is one policy's aggregate in a -tournament run.
type TournamentEntry struct {
	Policy        string       `json:"policy"`
	OK            int64        `json:"ok"`
	Errors        int64        `json:"errors"`
	Shed          int64        `json:"shed,omitempty"`
	ThroughputRPS float64      `json:"throughput_rps"`
	Latency       LatencyStats `json:"latency"`
}

// ChaosSummary reports a -chaos run: what was injected and how the data
// plane's resilience machinery responded.
type ChaosSummary struct {
	Seed         int64 `json:"seed"`
	Events       int   `json:"events"`
	FaultedNodes int   `json:"faulted_nodes"`
	BreakerOpens int64 `json:"breaker_opens"`
	Failovers    int64 `json:"failovers"`
	Retries      int64 `json:"retries"`
	MasterShed   int64 `json:"master_shed"`
	Exhausted    int64 `json:"master_exhausted"`
}

// run parses args, drives the load, and writes the JSON summary. Split
// from main for testability.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	targets := fs.String("targets", "", "comma-separated master base URLs (empty: self-host a loopback cluster)")
	nodes := fs.Int("nodes", 3, "self-hosted cluster size")
	masters := fs.Int("masters", 1, "self-hosted master count")
	timescale := fs.Float64("timescale", 1, "self-hosted service-duration scale (0.01 = 100× fast)")
	mode := fs.String("mode", "closed", "drive mode: open (paced arrivals) or closed (fixed workers)")
	rps := fs.Float64("rps", 0, "target request rate; required for -mode open, optional pacing for closed")
	concurrency := fs.Int("concurrency", 4, "closed-loop worker count")
	workers := fs.Int("workers", 64, "open-loop worker pool size")
	n := fs.Int("n", 200, "number of requests to issue")
	profile := fs.String("profile", "KSU", "request-mix profile (UCB, KSU, ADL)")
	muH := fs.Float64("muh", 110, "static service rate for demand calibration")
	r := fs.Float64("r", 1.0/40, "service ratio μc/μh for demand calibration")
	seed := fs.Int64("seed", 1, "mix generation seed")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	out := fs.String("out", "", "write the JSON summary to this file (default stdout)")
	minRPS := fs.Float64("min-rps", 0, "exit nonzero if measured throughput falls below this")
	chaosOn := fs.Bool("chaos", false, "inject randomized faults into the self-hosted cluster's slaves while driving load")
	chaosSeed := fs.Int64("chaos-seed", 42, "fault schedule seed (reproducible)")
	chaosLen := fs.Duration("chaos-len", 5*time.Second, "fault schedule length; all nodes are healthy again afterwards")
	chaosKills := fs.Bool("chaos-kills-only", false, "restrict injected faults to node kills (no pauses, latency or slow-loris)")
	fast := fs.Bool("fast", false, "run the self-hosted cluster uncalibrated: virtual-time demand accounting, no wall-clock sleeps")
	frame := fs.Bool("frame", false, "dispatch master→slave over the persistent binary frame transport")
	frameClient := fs.Bool("frame-client", false, "drive the masters over persistent 'Q' frames instead of HTTP GET /req (works with -targets too)")
	batch := fs.Duration("batch", 0, "coalescing window for batched dispatch over frames (0: off; implies -frame)")
	lshards := fs.Int("listener-shards", 0, "SO_REUSEPORT accept sockets per node in the self-hosted cluster (0/1: single listener)")
	sweep := fs.String("scaling-sweep", "", "comma-separated core widths (e.g. 1,2,4): run the closed-loop benchmark at each GOMAXPROCS width and report the cores→req/s curve; self-hosted cluster only")
	sweepClientCores := fs.Int("scaling-client-cores", 0, "with -scaling-sweep, reserve this many extra cores for the client on top of each cluster width (0: client shares the width)")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex-contention profile to this file at exit")
	blockProfile := fs.String("blockprofile", "", "write a goroutine-blocking profile to this file at exit")
	shards := fs.Int("shards", 0, "partition the self-hosted slave tier across the masters (must equal -masters; 0/1 = global view)")
	shardMap := fs.String("shard-map", "", "shard partitioning function: hash (default) or static")
	gossip := fs.Duration("gossip", 0, "master↔master shard-summary pull period (0 = 4×refresh)")
	var pf policy.Flags
	pf.Register(fs)
	tournament := fs.String("tournament", "", "run the live policy tournament over these comma-separated presets (\"competitors\" = the registry's competitor field); self-hosted cluster only")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.List {
		fmt.Fprint(stdout, policy.ListText())
		return nil
	}

	if prof := *mutexProfile; prof != "" {
		runtime.SetMutexProfileFraction(100)
		defer writeProfile("mutex", prof)
	}
	if prof := *blockProfile; prof != "" {
		runtime.SetBlockProfileRate(100_000) // one sample per 100µs blocked
		defer writeProfile("block", prof)
	}

	if *mode != "open" && *mode != "closed" {
		return fmt.Errorf("-mode must be open or closed, got %q", *mode)
	}
	if *chaosOn && *targets != "" {
		return fmt.Errorf("-chaos needs the self-hosted cluster (drop -targets): faults are injected via proxies in front of its slaves")
	}
	if *targets != "" && (*fast || *frame || *batch > 0 || *shards > 1 || *lshards > 1) {
		return fmt.Errorf("-fast/-frame/-batch/-shards/-listener-shards configure the self-hosted cluster (drop -targets)")
	}
	if *mode == "open" && *rps <= 0 {
		return fmt.Errorf("-mode open requires -rps > 0")
	}
	if *mode == "closed" && *concurrency < 1 {
		return fmt.Errorf("-concurrency must be at least 1")
	}
	prof, ok := trace.ProfileByName(*profile)
	if !ok {
		return fmt.Errorf("unknown profile %q", *profile)
	}

	// The generated trace supplies the class mix, sizes, demands and (in
	// open mode) the Poisson arrival schedule. Lambda only shapes
	// arrivals, so closed mode can use any positive rate.
	lambda := *rps
	if lambda <= 0 {
		lambda = 100
	}
	tr, err := trace.Generate(trace.GenConfig{
		Profile:  prof,
		Lambda:   lambda,
		Requests: *n,
		MuH:      *muH,
		R:        *r,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}

	build, err := pf.Resolve()
	if err != nil {
		return err
	}

	if *sweep != "" {
		if *targets != "" {
			return fmt.Errorf("-scaling-sweep boots its own clusters (drop -targets)")
		}
		if *chaosOn || *tournament != "" {
			return fmt.Errorf("-scaling-sweep is exclusive with -chaos and -tournament")
		}
		widths, err := parseWidths(*sweep)
		if err != nil {
			return err
		}
		return runScalingSweep(scalingRun{
			widths: widths, clientCores: *sweepClientCores,
			tr: tr, prof: prof,
			rps: *rps, concurrency: *concurrency,
			nodes: *nodes, masters: *masters, timescale: *timescale,
			fast: *fast, frame: *frame || *batch > 0, frameClient: *frameClient,
			batch: *batch, lshards: *lshards,
			shards: *shards, shardMap: *shardMap, gossip: *gossip,
			build: build, discipline: pf.Scheduling,
			timeout: *timeout, out: *out, minRPS: *minRPS,
		}, stdout)
	}

	if *tournament != "" {
		if *targets != "" {
			return fmt.Errorf("-tournament boots its own clusters (drop -targets)")
		}
		if *chaosOn {
			return fmt.Errorf("-tournament and -chaos are mutually exclusive")
		}
		names := policy.TournamentNames()
		if *tournament != "competitors" {
			names = names[:0]
			for _, name := range strings.Split(*tournament, ",") {
				if name = strings.TrimSpace(name); name != "" {
					names = append(names, name)
				}
			}
		}
		return runTournament(tournamentRun{
			names: names, tr: tr, prof: prof,
			mode: *mode, rps: *rps, concurrency: *concurrency, workers: *workers,
			nodes: *nodes, masters: *masters, timescale: *timescale,
			fast: *fast, frame: *frame || *batch > 0, batch: *batch,
			lshards: *lshards,
			shards:  *shards, shardMap: *shardMap, gossip: *gossip,
			discipline: pf.Scheduling, timeout: *timeout, out: *out,
			minRPS: *minRPS,
		}, stdout)
	}

	var targetURLs []string
	var harness *chaos.Harness
	var sched chaos.Schedule
	var schedDone chan struct{}
	var chaosCancel context.CancelFunc
	if *targets == "" {
		cfg := httpcluster.Config{
			Nodes: *nodes, Masters: *masters, TimeScale: *timescale,
			LoadRefresh: 50 * time.Millisecond,
			PolicyTick:  100 * time.Millisecond,
			MakePolicy: func(id int) core.Policy {
				return build(nil, int64(id)+1)
			},
			Discipline:     pf.Scheduling,
			Uncalibrated:   *fast,
			BinaryFraming:  *frame || *batch > 0,
			BatchWindow:    *batch,
			ListenerShards: *lshards,
			Shards:         *shards,
			ShardMapMode:   *shardMap,
			GossipEvery:    *gossip,
		}
		if *chaosOn {
			if *nodes <= *masters {
				return fmt.Errorf("-chaos needs at least one slave (nodes %d, masters %d)", *nodes, *masters)
			}
			// Faster fault detection than the steady-state defaults, so a
			// few-second schedule exercises open → half-open → closed; the
			// dispatch deadline stays under the client timeout so every
			// outcome is a counted status, not a client-side abort.
			cfg.Resilience = httpcluster.Resilience{
				Breaker:         httpcluster.BreakerConfig{OpenFor: 250 * time.Millisecond},
				DispatchTimeout: *timeout / 2,
				RetryBackoff:    2 * time.Millisecond,
			}
			h, err := chaos.Launch(cfg)
			if err != nil {
				return err
			}
			defer h.Shutdown()
			harness, targetURLs = h, h.MasterURLs()
			sched = chaos.Random(*chaosSeed, chaos.RandomConfig{
				Nodes:     h.SlaveIDs(),
				Length:    *chaosLen,
				KillsOnly: *chaosKills,
			})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			chaosCancel = cancel
			schedDone = make(chan struct{})
			go func() {
				defer close(schedDone)
				chaos.Run(ctx, time.Now(), sched, h.Proxies)
			}()
		} else {
			c, err := httpcluster.Start(cfg)
			if err != nil {
				return err
			}
			defer c.Shutdown()
			targetURLs = c.MasterURLs()
		}
	} else {
		targetURLs = strings.Split(*targets, ",")
	}

	s := Summary{
		Mode:           *mode,
		Profile:        prof.Name,
		Targets:        targetURLs,
		Requests:       *n,
		Fast:           *fast,
		Frame:          *frame || *batch > 0,
		FrameClient:    *frameClient,
		Shards:         *shards,
		ListenerShards: *lshards,
		BatchWindowS:   (*batch).Seconds(),
		TargetRPS:      *rps,
		Concurrency:    0,
	}
	var okCount, errCount, shedCount, exhaustedCount atomic.Int64
	var do func(int) bool
	if *frameClient {
		pool := newFramePool(targetURLs, *timeout)
		defer pool.Close()
		works := buildFrameWork(targetURLs, tr)
		do = newFrameDo(pool, works, &okCount, &errCount, &shedCount, &exhaustedCount)
	} else {
		client := &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 256},
			Timeout:   *timeout,
		}
		urls := buildURLs(targetURLs, tr)
		do = newHTTPDo(client, urls, &okCount, &errCount, &shedCount, &exhaustedCount)
	}

	start := time.Now()
	var merged, corrected *obs.Histogram
	switch *mode {
	case "open":
		merged = runOpen(*n, tr, *rps, *workers, start, do)
	case "closed":
		s.Concurrency = *concurrency
		merged, corrected = runClosed(*n, *concurrency, *rps, do)
	}
	dur := time.Since(start)

	s.Sent = int64(*n)
	s.OK = okCount.Load()
	s.Errors = errCount.Load()
	s.Shed = shedCount.Load()
	s.Exhausted = exhaustedCount.Load()
	s.DurationS = dur.Seconds()
	if s.DurationS > 0 {
		s.ThroughputRPS = float64(s.OK) / s.DurationS
	}
	s.ReqS = s.ThroughputRPS
	s.Cores = runtime.GOMAXPROCS(0)
	if s.Cores > 0 {
		s.ReqSPerCore = s.ThroughputRPS / float64(s.Cores)
	}
	s.Latency = statsOf(merged)
	if corrected != nil {
		cs := statsOf(corrected)
		s.Corrected = &cs
	}
	if harness != nil {
		chaosCancel() // load is done; stop replaying faults
		<-schedDone
		cs := ChaosSummary{Seed: *chaosSeed, Events: len(sched)}
		faulted := map[int]bool{}
		for _, e := range sched {
			if e.Mode != chaos.ModeOK {
				faulted[e.Node] = true
			}
		}
		cs.FaultedNodes = len(faulted)
		for _, m := range harness.Cluster.Masters {
			cs.Failovers += m.Failovers()
			cs.Retries += m.Retries()
			cs.MasterShed += m.Shed()
			cs.Exhausted += m.Exhausted()
			for _, id := range harness.SlaveIDs() {
				cs.BreakerOpens += m.BreakerOpens(id)
			}
		}
		s.Chaos = &cs
	}

	if err := writeSummary(&s, *out, stdout); err != nil {
		return err
	}

	if s.Errors > 0 && s.OK == 0 {
		return fmt.Errorf("every request failed (%d errors)", s.Errors)
	}
	if *minRPS > 0 && s.ThroughputRPS < *minRPS {
		return fmt.Errorf("throughput %.2f req/s below -min-rps %.2f", s.ThroughputRPS, *minRPS)
	}
	return nil
}

// buildURLs expands the trace's request mix into /req URLs striped
// across the target masters.
func buildURLs(targetURLs []string, tr *trace.Trace) []string {
	urls := make([]string, len(tr.Requests))
	for i, req := range tr.Requests {
		cls := "s"
		if req.Class == trace.Dynamic {
			cls = "d"
		}
		urls[i] = fmt.Sprintf("%s/req?class=%s&demand=%g&w=%g&script=%d&size=%d",
			targetURLs[i%len(targetURLs)], cls, req.Demand, req.CPUWeight, req.Script, req.Size)
	}
	return urls
}

// newHTTPDo builds the HTTP per-request driver, classifying each outcome
// into the given counters.
func newHTTPDo(client *http.Client, urls []string, ok, errs, shed, exhausted *atomic.Int64) func(int) bool {
	return func(i int) bool {
		resp, err := client.Get(urls[i])
		if err != nil {
			errs.Add(1)
			return false
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok.Add(1)
			return true
		case http.StatusServiceUnavailable:
			// Deliberate shedding (503 + Retry-After) is a terminal
			// outcome of overload protection, not a transport failure.
			shed.Add(1)
		case http.StatusBadGateway:
			// Retry budget or deadline exhausted at the master.
			exhausted.Add(1)
		default:
			errs.Add(1)
		}
		return false
	}
}

// writeProfile dumps a runtime profile family (mutex, block) to path at
// exit; failures are reported but never fail the run.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %s profile: %v\n", name, err)
		return
	}
	defer f.Close()
	p := pprof.Lookup(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "loadgen: no %s profile\n", name)
		return
	}
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %s profile: %v\n", name, err)
	}
}

// writeSummary emits the JSON report to the -out file or stdout.
func writeSummary(s *Summary, out string, stdout io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out != "" {
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loadgen: %s mode, %d ok / %d errors, %.1f req/s → %s\n",
			s.Mode, s.OK, s.Errors, s.ThroughputRPS, out)
	} else {
		stdout.Write(buf) //nolint:errcheck
	}
	return nil
}

// tournamentRun bundles everything one -tournament sweep needs.
type tournamentRun struct {
	names       []string
	tr          *trace.Trace
	prof        trace.Profile
	mode        string
	rps         float64
	concurrency int
	workers     int
	nodes       int
	masters     int
	timescale   float64
	fast        bool
	frame       bool
	batch       time.Duration
	lshards     int
	shards      int
	shardMap    string
	gossip      time.Duration
	discipline  string
	timeout     time.Duration
	out         string
	minRPS      float64
}

// runTournament boots one fresh self-hosted cluster per policy preset
// and replays the identical request mix against each, so the live data
// plane reproduces the simulator's head-to-head comparison. Entries are
// emitted in the order the presets were named.
func runTournament(tc tournamentRun, stdout io.Writer) error {
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
		Timeout:   tc.timeout,
	}
	s := Summary{
		Mode:         tc.mode,
		Profile:      tc.prof.Name,
		Requests:     len(tc.tr.Requests),
		Fast:         tc.fast,
		Frame:        tc.frame,
		BatchWindowS: tc.batch.Seconds(),
		TargetRPS:    tc.rps,
		Cores:        runtime.GOMAXPROCS(0),
	}
	if tc.mode == "closed" {
		s.Concurrency = tc.concurrency
	}
	for _, name := range tc.names {
		preset, err := policy.Lookup(name)
		if err != nil {
			return err
		}
		cfg := httpcluster.Config{
			Nodes: tc.nodes, Masters: tc.masters, TimeScale: tc.timescale,
			LoadRefresh: 50 * time.Millisecond,
			PolicyTick:  100 * time.Millisecond,
			MakePolicy: func(id int) core.Policy {
				return preset.Build(nil, int64(id)+1)
			},
			Discipline:     tc.discipline,
			Uncalibrated:   tc.fast,
			BinaryFraming:  tc.frame,
			BatchWindow:    tc.batch,
			ListenerShards: tc.lshards,
			Shards:         tc.shards,
			ShardMapMode:   tc.shardMap,
			GossipEvery:    tc.gossip,
		}
		c, err := httpcluster.Start(cfg)
		if err != nil {
			return fmt.Errorf("tournament %s: %w", preset.Name, err)
		}
		urls := buildURLs(c.MasterURLs(), tc.tr)
		var ok, errs, shed, exhausted atomic.Int64
		do := newHTTPDo(client, urls, &ok, &errs, &shed, &exhausted)

		start := time.Now()
		var merged *obs.Histogram
		n := len(urls)
		switch tc.mode {
		case "open":
			merged = runOpen(n, tc.tr, tc.rps, tc.workers, start, do)
		case "closed":
			merged, _ = runClosed(n, tc.concurrency, tc.rps, do)
		}
		dur := time.Since(start).Seconds()
		c.Shutdown()
		client.CloseIdleConnections()

		entry := TournamentEntry{
			Policy:  preset.Name,
			OK:      ok.Load(),
			Errors:  errs.Load() + exhausted.Load(),
			Shed:    shed.Load(),
			Latency: statsOf(merged),
		}
		if dur > 0 {
			entry.ThroughputRPS = float64(entry.OK) / dur
		}
		s.Tournament = append(s.Tournament, entry)
		s.Sent += int64(len(urls))
		s.OK += entry.OK
		s.Errors += entry.Errors
		s.Shed += entry.Shed
		s.DurationS += dur
	}
	if s.DurationS > 0 {
		s.ThroughputRPS = float64(s.OK) / s.DurationS
	}
	s.ReqS = s.ThroughputRPS
	if s.Cores > 0 {
		s.ReqSPerCore = s.ThroughputRPS / float64(s.Cores)
	}
	if err := writeSummary(&s, tc.out, stdout); err != nil {
		return err
	}
	if s.Errors > 0 && s.OK == 0 {
		return fmt.Errorf("every request failed (%d errors)", s.Errors)
	}
	if tc.minRPS > 0 && s.ThroughputRPS < tc.minRPS {
		return fmt.Errorf("throughput %.2f req/s below -min-rps %.2f", s.ThroughputRPS, tc.minRPS)
	}
	return nil
}

// runOpen fires requests on the trace's Poisson schedule rescaled to the
// target rate, measuring latency from each request's scheduled start. A
// fully buffered queue means the dispatcher never blocks on a slow
// server: delay shows up in the measurements, not in the schedule.
func runOpen(n int, tr *trace.Trace, rps float64, workers int, start time.Time, do func(int) bool) *obs.Histogram {
	type item struct {
		idx   int
		sched time.Time
	}
	queue := make(chan item, n)
	for i := 0; i < n; i++ {
		// Trace arrivals are already at mean rate Lambda == rps.
		queue <- item{idx: i, sched: start.Add(time.Duration(tr.Requests[i].Arrival * float64(time.Second)))}
	}
	close(queue)

	if workers < 1 {
		workers = 1
	}
	hists := make([]*obs.Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		hists[w] = obs.NewHistogram()
		wg.Add(1)
		go func(h *obs.Histogram) {
			defer wg.Done()
			for it := range queue {
				if d := time.Until(it.sched); d > 0 {
					time.Sleep(d)
				}
				do(it.idx)
				// Scheduled start, not send time: if every worker was
				// busy past sched, that wait is server-induced queueing
				// and belongs in the latency.
				h.Observe(time.Since(it.sched).Seconds())
			}
		}(hists[w])
	}
	wg.Wait()

	merged := obs.NewHistogram()
	for _, h := range hists {
		merged.Merge(h)
	}
	return merged
}

// runClosed drives a fixed worker population. With rps > 0 each worker
// paces itself at concurrency/rps seconds per request and the corrected
// histogram back-fills coordinated omission at that interval; with no
// pacing the workers run flat out and corrected is nil (there is no
// intended schedule to correct against).
func runClosed(n, concurrency int, rps float64, do func(int) bool) (*obs.Histogram, *obs.Histogram) {
	var next atomic.Int64
	interval := 0.0
	if rps > 0 {
		interval = float64(concurrency) / rps
	}

	raws := make([]*obs.Histogram, concurrency)
	corrs := make([]*obs.Histogram, concurrency)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		raws[w] = obs.NewHistogram()
		corrs[w] = obs.NewHistogram()
		wg.Add(1)
		go func(raw, corr *obs.Histogram) {
			defer wg.Done()
			var sched time.Time
			if interval > 0 {
				sched = time.Now()
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				if interval > 0 {
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
					sched = sched.Add(time.Duration(interval * float64(time.Second)))
				}
				t0 := time.Now()
				do(int(i))
				lat := time.Since(t0).Seconds()
				raw.Observe(lat)
				corr.ObserveCoordinated(lat, interval)
			}
		}(raws[w], corrs[w])
	}
	wg.Wait()

	raw := obs.NewHistogram()
	for _, h := range raws {
		raw.Merge(h)
	}
	if interval <= 0 {
		return raw, nil
	}
	corr := obs.NewHistogram()
	for _, h := range corrs {
		corr.Merge(h)
	}
	return raw, corr
}
