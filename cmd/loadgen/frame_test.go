package main

import (
	"testing"
	"time"

	"msweb/internal/httpcluster"
)

// A target whose master died (or was demoted away) must stop costing
// the driver requests: after frameFailThreshold consecutive failures
// the pool evicts its pre-dialed connections and routes its share of
// the load to the next live target, and a markOK (a successful probe)
// brings it straight back.
func TestFramePoolRoutesAroundDeadTarget(t *testing.T) {
	n, err := httpcluster.LaunchNode(httpcluster.NodeOptions{ID: 0, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	pool := newFramePool([]string{"http://127.0.0.1:1", n.URL}, time.Second)
	defer pool.Close()

	for i := 0; i < frameFailThreshold; i++ {
		if pool.route(0) != 0 {
			t.Fatal("routed away before the failure threshold")
		}
		if _, err := pool.get(0); err == nil {
			t.Fatal("dial against the dead target succeeded")
		}
		pool.markFail(0)
	}
	rerouted := 0
	for i := 0; i < 10; i++ {
		if pool.route(0) == 1 {
			rerouted++
		}
	}
	if rerouted < 9 { // the probe ration may keep at most the odd one
		t.Fatalf("only %d/10 requests rerouted off the dead target", rerouted)
	}
	pool.markOK(0)
	if pool.route(0) != 0 {
		t.Fatal("recovered target not routed to after markOK")
	}
}

// Marking a target dead evicts its pooled (stale) connections, so no
// worker can pop a pre-dialed dead end afterwards.
func TestFramePoolEvictsStaleConnsOnDeath(t *testing.T) {
	n, err := httpcluster.LaunchNode(httpcluster.NodeOptions{ID: 0, TimeScale: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Shutdown()

	pool := newFramePool([]string{n.URL}, time.Second)
	defer pool.Close()
	fc, err := pool.get(0)
	if err != nil {
		t.Fatal(err)
	}
	pool.put(0, fc)

	for i := 0; i < frameFailThreshold; i++ {
		pool.markFail(0)
	}
	if got := pool.evictions.Load(); got != 1 {
		t.Fatalf("evictions %d after the target died with one pooled conn, want 1", got)
	}
	pool.mu.Lock()
	left := len(pool.free[0])
	pool.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d stale conns still pooled after eviction", left)
	}
}
