package main

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"msweb/internal/httpcluster"
	"msweb/internal/trace"
)

// frameFailThreshold is how many consecutive transport failures against
// one target mark it dead: its pooled connections are evicted and
// traffic reroutes to the next live target. Two, not one — a single
// poisoned connection (idle timeout, one lost race with a restart)
// should not divert a whole target's share of the load.
const frameFailThreshold = 2

// frameProbeEvery rations recovery probes at a dead target: one request
// in this many routed to it gets through, so a restarted or re-promoted
// master is picked back up without hammering a corpse.
const frameProbeEvery = 64

// framePool hands out persistent 'Q'-frame connections to the target
// masters — the binary transport's analogue of http.Transport's
// keep-alive pool. Connections are pooled per target: a worker pops one
// (dialing fresh when the free list is empty), issues a request, and
// returns it; transport errors close the connection so the next request
// redials.
//
// Unlike the HTTP path, pooled frame connections pin their master: when
// that master is killed or demoted (live membership changes mid-run),
// every pooled connection to it is a pre-dialed dead end. The pool
// tracks consecutive failures per target; at frameFailThreshold it
// evicts the target's free list and routes around it, probing
// occasionally so recovery is automatic. Under C concurrent workers the
// pool converges on at most C connections per live target.
type framePool struct {
	targets []string
	timeout time.Duration
	mu      sync.Mutex
	free    [][]*httpcluster.FrameClient
	// fails counts consecutive transport failures per target (guarded by
	// mu); at frameFailThreshold the target is considered dead.
	fails     []int
	dials     atomic.Int64
	evictions atomic.Int64
	rerouted  atomic.Int64
	probes    atomic.Int64
}

func newFramePool(targets []string, timeout time.Duration) *framePool {
	return &framePool{
		targets: targets,
		timeout: timeout,
		free:    make([][]*httpcluster.FrameClient, len(targets)),
		fails:   make([]int, len(targets)),
	}
}

// route resolves a request's preferred target to one currently believed
// live, walking forward from the preference so reroutes spread instead
// of piling onto one survivor. With every target dead (or the probe
// ration due) the preferred target stands — failing loudly beats
// failing silently somewhere else.
func (p *framePool) route(t int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fails[t] < frameFailThreshold {
		return t
	}
	if p.probes.Add(1)%frameProbeEvery == 0 {
		return t
	}
	for i := 1; i < len(p.targets); i++ {
		n := (t + i) % len(p.targets)
		if p.fails[n] < frameFailThreshold {
			p.rerouted.Add(1)
			return n
		}
	}
	return t
}

// markFail records one transport failure; crossing the threshold evicts
// the target's pooled connections (they all pin the same dead master).
func (p *framePool) markFail(t int) {
	p.mu.Lock()
	p.fails[t]++
	if p.fails[t] == frameFailThreshold {
		for _, fc := range p.free[t] {
			fc.Close() //nolint:errcheck
			p.evictions.Add(1)
		}
		p.free[t] = nil
	}
	p.mu.Unlock()
}

// markOK clears the target's failure streak (a probe that succeeds
// brings a recovered target straight back into rotation).
func (p *framePool) markOK(t int) {
	p.mu.Lock()
	p.fails[t] = 0
	p.mu.Unlock()
}

func (p *framePool) get(t int) (*httpcluster.FrameClient, error) {
	p.mu.Lock()
	if s := p.free[t]; len(s) > 0 {
		fc := s[len(s)-1]
		p.free[t] = s[:len(s)-1]
		p.mu.Unlock()
		return fc, nil
	}
	p.mu.Unlock()
	p.dials.Add(1)
	return httpcluster.DialFrame(p.targets[t], p.timeout)
}

func (p *framePool) put(t int, fc *httpcluster.FrameClient) {
	p.mu.Lock()
	p.free[t] = append(p.free[t], fc)
	p.mu.Unlock()
}

// Close tears down every pooled connection. Safe to call repeatedly.
func (p *framePool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for t, s := range p.free {
		for _, fc := range s {
			fc.Close() //nolint:errcheck
		}
		p.free[t] = nil
	}
}

// frameWork is one trace request pre-encoded for the frame transport.
// The one-entry batch array is built once, so the hot path slices it
// without allocating per request.
type frameWork struct {
	target int
	batch  [1]httpcluster.FrameRequest
}

// buildFrameWork expands the trace's request mix into frame requests
// striped across the target masters — the 'Q'-frame analogue of
// buildURLs.
func buildFrameWork(targets []string, tr *trace.Trace) []frameWork {
	works := make([]frameWork, len(tr.Requests))
	for i, req := range tr.Requests {
		works[i] = frameWork{
			target: i % len(targets),
			batch: [1]httpcluster.FrameRequest{{
				Demand:  req.Demand,
				W:       req.CPUWeight,
				Script:  req.Script,
				Dynamic: req.Class == trace.Dynamic,
			}},
		}
	}
	return works
}

// newFrameDo builds the frame-transport per-request driver. Statuses
// reuse HTTP codes, so the outcome classification is byte-identical to
// the HTTP path's.
func newFrameDo(pool *framePool, works []frameWork, ok, errs, shed, exhausted *atomic.Int64) func(int) bool {
	return func(i int) bool {
		w := &works[i]
		t := pool.route(w.target)
		fc, err := pool.get(t)
		if err != nil {
			pool.markFail(t)
			errs.Add(1)
			return false
		}
		sts, err := fc.Do(w.batch[:], time.Now().Add(pool.timeout))
		if err != nil {
			// Poisoned connection: drop it so the next get redials.
			fc.Close() //nolint:errcheck
			pool.markFail(t)
			errs.Add(1)
			return false
		}
		pool.markOK(t)
		pool.put(t, fc)
		switch sts[0] {
		case http.StatusOK:
			ok.Add(1)
			return true
		case http.StatusServiceUnavailable:
			shed.Add(1)
		case http.StatusBadGateway:
			exhausted.Add(1)
		default:
			errs.Add(1)
		}
		return false
	}
}
