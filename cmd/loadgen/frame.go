package main

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"msweb/internal/httpcluster"
	"msweb/internal/trace"
)

// framePool hands out persistent 'Q'-frame connections to the target
// masters — the binary transport's analogue of http.Transport's
// keep-alive pool. Connections are pooled per target: a worker pops one
// (dialing fresh when the free list is empty), issues a request, and
// returns it; transport errors close the connection so the next request
// redials. Under C concurrent workers the pool converges on at most C
// connections per target, each with its own reused scratch buffers.
type framePool struct {
	targets []string
	timeout time.Duration
	mu      sync.Mutex
	free    [][]*httpcluster.FrameClient
	dials   atomic.Int64
}

func newFramePool(targets []string, timeout time.Duration) *framePool {
	return &framePool{
		targets: targets,
		timeout: timeout,
		free:    make([][]*httpcluster.FrameClient, len(targets)),
	}
}

func (p *framePool) get(t int) (*httpcluster.FrameClient, error) {
	p.mu.Lock()
	if s := p.free[t]; len(s) > 0 {
		fc := s[len(s)-1]
		p.free[t] = s[:len(s)-1]
		p.mu.Unlock()
		return fc, nil
	}
	p.mu.Unlock()
	p.dials.Add(1)
	return httpcluster.DialFrame(p.targets[t], p.timeout)
}

func (p *framePool) put(t int, fc *httpcluster.FrameClient) {
	p.mu.Lock()
	p.free[t] = append(p.free[t], fc)
	p.mu.Unlock()
}

// Close tears down every pooled connection. Safe to call repeatedly.
func (p *framePool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for t, s := range p.free {
		for _, fc := range s {
			fc.Close() //nolint:errcheck
		}
		p.free[t] = nil
	}
}

// frameWork is one trace request pre-encoded for the frame transport.
// The one-entry batch array is built once, so the hot path slices it
// without allocating per request.
type frameWork struct {
	target int
	batch  [1]httpcluster.FrameRequest
}

// buildFrameWork expands the trace's request mix into frame requests
// striped across the target masters — the 'Q'-frame analogue of
// buildURLs.
func buildFrameWork(targets []string, tr *trace.Trace) []frameWork {
	works := make([]frameWork, len(tr.Requests))
	for i, req := range tr.Requests {
		works[i] = frameWork{
			target: i % len(targets),
			batch: [1]httpcluster.FrameRequest{{
				Demand:  req.Demand,
				W:       req.CPUWeight,
				Script:  req.Script,
				Dynamic: req.Class == trace.Dynamic,
			}},
		}
	}
	return works
}

// newFrameDo builds the frame-transport per-request driver. Statuses
// reuse HTTP codes, so the outcome classification is byte-identical to
// the HTTP path's.
func newFrameDo(pool *framePool, works []frameWork, ok, errs, shed, exhausted *atomic.Int64) func(int) bool {
	return func(i int) bool {
		w := &works[i]
		fc, err := pool.get(w.target)
		if err != nil {
			errs.Add(1)
			return false
		}
		sts, err := fc.Do(w.batch[:], time.Now().Add(pool.timeout))
		if err != nil {
			// Poisoned connection: drop it so the next get redials.
			fc.Close() //nolint:errcheck
			errs.Add(1)
			return false
		}
		pool.put(w.target, fc)
		switch sts[0] {
		case http.StatusOK:
			ok.Add(1)
			return true
		case http.StatusServiceUnavailable:
			shed.Add(1)
		case http.StatusBadGateway:
			exhausted.Add(1)
		default:
			errs.Add(1)
		}
		return false
	}
}
