package main

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
	"msweb/internal/policy"
	"msweb/internal/trace"
)

// ScalingPoint is one width of a -scaling-sweep run: the closed-loop
// benchmark replayed with GOMAXPROCS pinned to Cores (plus any reserved
// client cores). Widths the machine cannot provide are reported with
// Skipped=true rather than failing the sweep, so the JSON curve always
// has the shape the caller asked for.
type ScalingPoint struct {
	Cores       int     `json:"cores"`
	Procs       int     `json:"procs,omitempty"`
	Skipped     bool    `json:"skipped,omitempty"`
	Reason      string  `json:"reason,omitempty"`
	OK          int64   `json:"ok,omitempty"`
	Errors      int64   `json:"errors,omitempty"`
	Shed        int64   `json:"shed,omitempty"`
	DurationS   float64 `json:"duration_s,omitempty"`
	ReqS        float64 `json:"req_s,omitempty"`
	ReqSPerCore float64 `json:"req_s_per_core,omitempty"`
	P99S        float64 `json:"p99_s,omitempty"`
}

// scalingRun bundles everything one -scaling-sweep needs.
type scalingRun struct {
	widths      []int
	clientCores int
	tr          *trace.Trace
	prof        trace.Profile
	rps         float64
	concurrency int
	nodes       int
	masters     int
	timescale   float64
	fast        bool
	frame       bool
	frameClient bool
	batch       time.Duration
	lshards     int
	shards      int
	shardMap    string
	gossip      time.Duration
	build       policy.Builder
	discipline  string
	timeout     time.Duration
	out         string
	minRPS      float64
}

// parseWidths parses "1,2,4" into sorted, deduplicated core widths.
func parseWidths(s string) ([]int, error) {
	var widths []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-scaling-sweep: bad width %q (want positive integers)", part)
		}
		if !seen[w] {
			seen[w] = true
			widths = append(widths, w)
		}
	}
	if len(widths) == 0 {
		return nil, fmt.Errorf("-scaling-sweep: no widths")
	}
	sort.Ints(widths)
	return widths, nil
}

// runScalingSweep replays the identical closed-loop benchmark at each
// requested core width: GOMAXPROCS is pinned to the width (plus any
// -scaling-client-cores reservation), a fresh self-hosted cluster boots,
// and the aggregate req/s lands in one ScalingPoint. The resulting
// cores→throughput curve is the harness's answer to "does the data plane
// scale with cores?" — parallel efficiency at width w is
// (req_s[w]/req_s[1])/w, computed downstream by benchjson.
func runScalingSweep(sc scalingRun, stdout io.Writer) error {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	s := Summary{
		Mode:           "closed",
		Profile:        sc.prof.Name,
		Requests:       len(sc.tr.Requests),
		Fast:           sc.fast,
		Frame:          sc.frame,
		FrameClient:    sc.frameClient,
		Shards:         sc.shards,
		ListenerShards: sc.lshards,
		BatchWindowS:   sc.batch.Seconds(),
		TargetRPS:      sc.rps,
		Concurrency:    sc.concurrency,
	}
	for _, width := range sc.widths {
		procs := width + sc.clientCores
		pt := ScalingPoint{Cores: width, Procs: procs}
		if procs > runtime.NumCPU() {
			// Skip-gated, never failed: a 1-CPU CI box still emits the
			// full curve shape, with the wide points marked.
			pt.Skipped = true
			pt.Reason = fmt.Sprintf("needs %d procs, machine has %d CPUs", procs, runtime.NumCPU())
			s.Scaling = append(s.Scaling, pt)
			continue
		}
		runtime.GOMAXPROCS(procs)
		if err := runScalingPoint(&sc, &pt); err != nil {
			return fmt.Errorf("scaling width %d: %w", width, err)
		}
		s.Scaling = append(s.Scaling, pt)
		s.Sent += int64(len(sc.tr.Requests))
		s.OK += pt.OK
		s.Errors += pt.Errors
		s.Shed += pt.Shed
		s.DurationS += pt.DurationS
	}
	runtime.GOMAXPROCS(prev)

	// Headline fields come from the widest completed point: on a
	// multi-core run the aggregate req/s is the number that matters.
	for i := len(s.Scaling) - 1; i >= 0; i-- {
		if pt := s.Scaling[i]; !pt.Skipped {
			s.Cores = pt.Cores
			s.ThroughputRPS = pt.ReqS
			s.ReqS = pt.ReqS
			s.ReqSPerCore = pt.ReqSPerCore
			s.Latency.P99 = pt.P99S
			break
		}
	}

	if err := writeSummary(&s, sc.out, stdout); err != nil {
		return err
	}
	ran := s.OK + s.Errors + s.Shed
	if ran > 0 && s.OK == 0 {
		return fmt.Errorf("every request failed (%d errors)", s.Errors)
	}
	if sc.minRPS > 0 && s.ReqS > 0 && s.ReqS < sc.minRPS {
		return fmt.Errorf("throughput %.2f req/s below -min-rps %.2f", s.ReqS, sc.minRPS)
	}
	return nil
}

// runScalingPoint boots a fresh cluster and drives the closed loop once,
// filling the point's measurements.
func runScalingPoint(sc *scalingRun, pt *ScalingPoint) error {
	cfg := httpcluster.Config{
		Nodes: sc.nodes, Masters: sc.masters, TimeScale: sc.timescale,
		LoadRefresh: 50 * time.Millisecond,
		PolicyTick:  100 * time.Millisecond,
		MakePolicy: func(id int) core.Policy {
			return sc.build(nil, int64(id)+1)
		},
		Discipline:     sc.discipline,
		Uncalibrated:   sc.fast,
		BinaryFraming:  sc.frame,
		BatchWindow:    sc.batch,
		ListenerShards: sc.lshards,
		Shards:         sc.shards,
		ShardMapMode:   sc.shardMap,
		GossipEvery:    sc.gossip,
	}
	c, err := httpcluster.Start(cfg)
	if err != nil {
		return err
	}
	defer c.Shutdown()
	targets := c.MasterURLs()

	var ok, errs, shed, exhausted atomic.Int64
	var do func(int) bool
	if sc.frameClient {
		pool := newFramePool(targets, sc.timeout)
		defer pool.Close()
		do = newFrameDo(pool, buildFrameWork(targets, sc.tr), &ok, &errs, &shed, &exhausted)
	} else {
		client := &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 256},
			Timeout:   sc.timeout,
		}
		defer client.CloseIdleConnections()
		do = newHTTPDo(client, buildURLs(targets, sc.tr), &ok, &errs, &shed, &exhausted)
	}

	start := time.Now()
	merged, _ := runClosed(len(sc.tr.Requests), sc.concurrency, sc.rps, do)
	dur := time.Since(start).Seconds()

	pt.OK = ok.Load()
	pt.Errors = errs.Load() + exhausted.Load()
	pt.Shed = shed.Load()
	pt.DurationS = dur
	if dur > 0 {
		pt.ReqS = float64(pt.OK) / dur
	}
	if pt.Cores > 0 {
		pt.ReqSPerCore = pt.ReqS / float64(pt.Cores)
	}
	pt.P99S = merged.Quantile(0.99)
	return nil
}
