package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadgenClosed drives a self-hosted cluster in closed mode with
// pacing and checks the JSON summary end to end: counts, throughput,
// and the presence of the coordinated-omission-corrected distribution.
func TestLoadgenClosed(t *testing.T) {
	out := filepath.Join(t.TempDir(), "closed.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-mode", "closed", "-concurrency", "3", "-rps", "300",
		"-n", "60", "-nodes", "3", "-masters", "1",
		"-timescale", "0.001", "-min-rps", "1", "-out", out,
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf, &s); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, buf)
	}
	if s.Mode != "closed" || s.Sent != 60 || s.OK != 60 || s.Errors != 0 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.ThroughputRPS <= 0 {
		t.Fatalf("throughput %v, want > 0", s.ThroughputRPS)
	}
	if s.Corrected == nil {
		t.Fatal("paced closed mode must report a corrected distribution")
	}
	if s.Latency.P99 < s.Latency.P50 || s.Latency.Max < s.Latency.P99 {
		t.Fatalf("latency quantiles not monotone: %+v", s.Latency)
	}
	if !strings.Contains(stdout.String(), out) {
		t.Fatalf("stdout should mention the output file: %q", stdout.String())
	}
}

// TestLoadgenOpen checks the open (arrival-paced) mode: latency is
// measured from scheduled starts and no corrected histogram is emitted
// (the open measurement is coordinated-omission-free by construction).
func TestLoadgenOpen(t *testing.T) {
	var stdout bytes.Buffer
	err := run([]string{
		"-mode", "open", "-rps", "500", "-n", "50",
		"-nodes", "2", "-masters", "1", "-timescale", "0.001",
		"-workers", "16",
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, stdout.Bytes())
	}
	if s.Mode != "open" || s.Sent != 50 || s.OK != 50 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.Corrected != nil {
		t.Fatal("open mode must not emit a corrected distribution")
	}
}

// TestLoadgenChaos runs the self-hosted cluster under an injected fault
// schedule and checks the chaos section of the summary: the schedule
// shape is reported, every request still reaches a terminal outcome,
// and the identical seed reproduces the identical schedule shape.
func TestLoadgenChaos(t *testing.T) {
	runOnce := func() Summary {
		t.Helper()
		var stdout bytes.Buffer
		err := run([]string{
			"-mode", "closed", "-concurrency", "4", "-n", "300",
			"-nodes", "4", "-masters", "1", "-timescale", "0.001",
			"-chaos", "-chaos-seed", "7", "-chaos-len", "1s",
		}, &stdout)
		if err != nil {
			t.Fatal(err)
		}
		var s Summary
		if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
			t.Fatalf("summary is not valid JSON: %v\n%s", err, stdout.Bytes())
		}
		return s
	}
	s := runOnce()
	if s.Chaos == nil {
		t.Fatal("-chaos must emit a chaos section")
	}
	if s.Chaos.Seed != 7 || s.Chaos.Events == 0 || s.Chaos.FaultedNodes == 0 {
		t.Fatalf("chaos schedule shape: %+v", *s.Chaos)
	}
	if got := s.OK + s.Shed + s.Exhausted + s.Errors; got != s.Sent {
		t.Fatalf("outcomes %d (ok %d + shed %d + exhausted %d + errors %d) != sent %d",
			got, s.OK, s.Shed, s.Exhausted, s.Errors, s.Sent)
	}
	if s.OK == 0 {
		t.Fatal("no request succeeded under chaos")
	}
	s2 := runOnce()
	if s2.Chaos.Events != s.Chaos.Events || s2.Chaos.FaultedNodes != s.Chaos.FaultedNodes {
		t.Fatalf("same seed, different schedule: %+v vs %+v", *s.Chaos, *s2.Chaos)
	}
}

// TestLoadgenFlagErrors pins the argument contract.
func TestLoadgenFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-mode", "sideways"},
		{"-mode", "open"}, // missing -rps
		{"-mode", "closed", "-concurrency", "0"},
		{"-profile", "NOPE"},
		{"-chaos", "-targets", "http://localhost:1"},
		{"-chaos", "-nodes", "1", "-masters", "1"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
