// Command msbench regenerates the paper's tables and figures.
//
// Usage:
//
//	msbench -experiment all                # everything (several minutes)
//	msbench -experiment fig3a              # one artifact
//	msbench -experiment fig4a -quick       # reduced fidelity
//
// Experiments: table1, table2, table3, fig3a, fig3b, fig4a, fig4b,
// fig5 (the paper's artifacts); cachesweep, failover, flashcrowd,
// autoscale, hetero (extension studies); wsense, staleness (ablations).
// "all" runs everything.
//
// Simulation grids run on a bounded worker pool (-parallel, default
// GOMAXPROCS; -parallel 1 forces the sequential order — output is
// byte-identical either way). -cpuprofile/-memprofile write pprof
// profiles for the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"msweb/internal/experiments"
	"msweb/internal/policy"
	"msweb/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "msbench:", err)
		os.Exit(1)
	}
}

// run parses args and executes the selected experiments. Split from
// main for testability. Tables go to stdout; warnings to stderr, so
// piped table output stays clean.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("msbench", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "which artifact to regenerate (table1|table2|table3|fig3a|fig3b|fig4a|fig4b|fig5|cachesweep|failover|flashcrowd|autoscale|hetero|tournament|sharded|all)")
	var pf policy.Flags
	pf.Register(fs)
	quick := fs.Bool("quick", false, "reduced fidelity: fewer seeds, shorter replays")
	seeds := fs.Int("seeds", 0, "override the number of seeds averaged per cell")
	rho := fs.Float64("rho", 0, "override the target flat utilization (0 = default 0.65)")
	csvDir := fs.String("csv", "", "also write each experiment's rows as CSV into this directory")
	par := fs.Int("parallel", 0, "grid worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	traceOut := fs.String("trace-out", "", "write per-request lifecycle traces (JSONL) of fig4 cells to this file")
	traceMatch := fs.String("trace-match", "", "only trace cells whose label contains this substring (empty = all cells)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if pf.List {
		fmt.Fprint(stdout, policy.ListText())
		return nil
	}
	// The unified policy flags select the tournament field: -policy takes
	// a comma-separated preset list here (it names one preset in the
	// serving binaries), and the stage flags add one custom pipeline
	// entrant on top.
	var tournCfg experiments.TournamentConfig
	policySet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "policy" {
			policySet = true
		}
	})
	if policySet {
		for _, name := range strings.Split(pf.Preset, ",") {
			if name = strings.TrimSpace(name); name != "" {
				tournCfg.Policies = append(tournCfg.Policies, name)
			}
		}
	}
	if pf.Custom() {
		build, err := pf.Resolve()
		if err != nil {
			return err
		}
		name := pf.Spec().Name
		if name == "" {
			name = "custom"
		}
		tournCfg.Extra = append(tournCfg.Extra, policy.Preset{Name: name, Build: build})
	}

	experiments.SetParallelism(*par)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "msbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "msbench: memprofile:", err)
			}
		}()
	}

	emit := func(t *report.Table) error { return nil }
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		emit = func(t *report.Table) error {
			path := filepath.Join(*csvDir, report.Slug(t.Title)+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := t.WriteCSV(f); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
			return nil
		}
	}

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	if *seeds > 0 {
		opts.Seeds = opts.Seeds[:0]
		for i := 1; i <= *seeds; i++ {
			opts.Seeds = append(opts.Seeds, int64(i))
		}
	}
	if *rho > 0 && *rho < 1 {
		opts.TargetRho = *rho
	}
	var traces *experiments.TraceCollector
	if *traceOut != "" {
		traces = experiments.NewTraceCollector(*traceMatch)
		opts.Trace = traces
	}

	runners := map[string]func() error{
		"table1": func() error {
			n := 20000
			if *quick {
				n = 3000
			}
			rows, err := experiments.RunTable1(n, 1)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatTable1(rows))
			return emit(experiments.Table1Table(rows))
		},
		"table2": func() error {
			rows := experiments.RunTable2(opts)
			fmt.Fprintln(stdout, experiments.FormatTable2(rows))
			return emit(experiments.Table2Table(rows))
		},
		"fig3a": func() error {
			curves := experiments.RunFig3()
			fmt.Fprintln(stdout, experiments.FormatFig3a(curves))
			return emit(experiments.Fig3Table(curves))
		},
		"fig3b": func() error {
			curves := experiments.RunFig3()
			fmt.Fprintln(stdout, experiments.FormatFig3b(curves))
			return emit(experiments.Fig3Table(curves))
		},
		"fig4a": func() error {
			rows, err := experiments.RunFig4(32, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatFig4(32, rows))
			tbl := experiments.Fig4Table(32, rows)
			tbl.Title += " p32"
			return emit(tbl)
		},
		"fig4b": func() error {
			rows, err := experiments.RunFig4(128, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatFig4(128, rows))
			tbl := experiments.Fig4Table(128, rows)
			tbl.Title += " p128"
			return emit(tbl)
		},
		"fig5": func() error {
			res, err := experiments.RunFig5(32, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatFig5(res))
			return emit(experiments.Fig5Table(res))
		},
		"cachesweep": func() error {
			rows, err := experiments.RunCacheSweep(16, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatCacheSweep(16, rows))
			return emit(experiments.CacheSweepTable(rows))
		},
		"failover": func() error {
			rows, err := experiments.RunFailoverStudy(16, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatFailoverStudy(16, rows))
			return emit(experiments.FailoverTable(rows))
		},
		"flashcrowd": func() error {
			rows, err := experiments.RunFlashCrowd(16, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatFlashCrowd(16, rows))
			return emit(experiments.FlashCrowdTable(rows))
		},
		"autoscale": func() error {
			rows, err := experiments.RunAutoscale(16, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatAutoscale(16, rows))
			return emit(experiments.AutoscaleTable(rows))
		},
		"hetero": func() error {
			rows, err := experiments.RunHeteroStudy(16, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatHeteroStudy(16, rows))
			return emit(experiments.HeteroTable(rows))
		},
		"discipline": func() error {
			rows, err := experiments.RunDiscipline(32, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatDiscipline(32, rows))
			return emit(experiments.DisciplineTable(rows))
		},
		"openclosed": func() error {
			rows, err := experiments.RunOpenClosed(16, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatOpenClosed(16, rows))
			return emit(experiments.OpenClosedTable(rows))
		},
		"wsense": func() error {
			rows, err := experiments.RunWSensitivity(16, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatWSensitivity(16, rows))
			return emit(experiments.WSensitivityTable(rows))
		},
		"staleness": func() error {
			rows, err := experiments.RunStaleness(16, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatStaleness(16, rows))
			return emit(experiments.StalenessTable(rows))
		},
		"tournament": func() error {
			rows, err := experiments.RunTournament(16, opts, tournCfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatTournament(16, rows))
			return emit(experiments.TournamentTable(rows))
		},
		"sharded": func() error {
			fleets := []int{1000, 4000, 10000}
			if *quick {
				fleets = []int{256, 1024}
			}
			rows, err := experiments.RunShardScale(fleets, opts)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatShardScale(rows))
			return emit(experiments.ShardScaleTable(rows))
		},
		"table3": func() error {
			t3 := experiments.DefaultTable3Options()
			if *quick {
				t3 = experiments.QuickTable3Options()
			}
			rows, err := experiments.RunTable3(t3)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, experiments.FormatTable3(rows))
			return emit(experiments.Table3Table(rows))
		},
	}

	order := []string{"table1", "table2", "fig3a", "fig3b", "fig4a", "fig4b", "fig5", "cachesweep", "failover", "flashcrowd", "autoscale", "hetero", "discipline", "openclosed", "wsense", "staleness", "tournament", "sharded", "table3"}
	// Experiments that never read the shared Options: table1 sizes
	// itself, fig3 is closed-form, table3 has its own Table3Options.
	ignoresOptions := map[string]bool{"table1": true, "fig3a": true, "fig3b": true, "table3": true}
	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := runners[*exp]; ok {
		selected = []string{*exp}
	} else {
		return fmt.Errorf("unknown experiment %q; choose from %v or all", *exp, order)
	}

	if *seeds > 0 || *rho > 0 {
		affected := false
		for _, name := range selected {
			if !ignoresOptions[name] {
				affected = true
				break
			}
		}
		if !affected {
			fmt.Fprintf(stderr, "warning: -seeds/-rho have no effect on %v\n", selected)
		}
	}
	if traces != nil {
		// Lifecycle tracing is wired through the Figure 4 grid.
		traced := map[string]bool{"fig4a": true, "fig4b": true}
		affected := false
		for _, name := range selected {
			if traced[name] {
				affected = true
				break
			}
		}
		if !affected {
			fmt.Fprintf(stderr, "warning: -trace-out captures nothing for %v (tracing is wired into fig4a/fig4b)\n", selected)
		}
	}

	for _, name := range selected {
		start := time.Now()
		if err := runners[name](); err != nil {
			return fmt.Errorf("%s failed: %w", name, err)
		}
		fmt.Fprintf(stdout, "[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	if traces != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := traces.WriteTo(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d trace bytes (%d cells) to %s\n", n, len(traces.Cells()), *traceOut)
	}
	return nil
}
