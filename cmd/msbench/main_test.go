package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestRunFastExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "table2", "fig3a", "fig3b"} {
		var out bytes.Buffer
		if err := run([]string{"-experiment", exp, "-quick"}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), "completed in") {
			t.Fatalf("%s: no completion marker:\n%s", exp, out.String())
		}
	}
}

func TestRunSimulatedExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment skipped in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-experiment", "flashcrowd", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flash-crowd") {
		t.Fatalf("missing output:\n%s", out.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSeedAndRhoOverrides(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "table2", "-quick", "-seeds", "1", "-rho", "0.5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0.50") {
		t.Fatalf("rho override not reflected:\n%s", out.String())
	}
}

func TestSeedsRhoWarningForNoOptionsExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "fig3a", "-seeds", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warning: -seeds/-rho have no effect") {
		t.Fatalf("missing ignored-flag warning:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-experiment", "table2", "-quick", "-seeds", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "warning: -seeds/-rho") {
		t.Fatalf("spurious warning for an Options experiment:\n%s", out.String())
	}
}

func TestParallelAndProfileFlags(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-experiment", "table2", "-quick", "-parallel", "2",
		"-cpuprofile", dir + "/cpu.pprof", "-memprofile", dir + "/mem.pprof"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "completed in") {
		t.Fatalf("no completion marker:\n%s", out.String())
	}
	if _, err := os.Stat(dir + "/cpu.pprof"); err != nil {
		t.Fatalf("cpu profile not written: %v", err)
	}
}

func TestCSVEmission(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-experiment", "table2", "-quick", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".csv") {
		t.Fatalf("csv dir contents: %v", entries)
	}
	data, err := os.ReadFile(dir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "trace,a,p,target_rho,inv_r,lambda_req_s") {
		t.Fatalf("csv header wrong:\n%s", string(data)[:80])
	}
}
