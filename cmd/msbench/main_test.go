package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunFastExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "table2", "fig3a", "fig3b"} {
		var out bytes.Buffer
		if err := run([]string{"-experiment", exp, "-quick"}, &out, io.Discard); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), "completed in") {
			t.Fatalf("%s: no completion marker:\n%s", exp, out.String())
		}
	}
}

func TestRunSimulatedExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment skipped in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-experiment", "flashcrowd", "-quick"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flash-crowd") {
		t.Fatalf("missing output:\n%s", out.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "nope"}, &out, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}, &out, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSeedAndRhoOverrides(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "table2", "-quick", "-seeds", "1", "-rho", "0.5"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0.50") {
		t.Fatalf("rho override not reflected:\n%s", out.String())
	}
}

func TestSeedsRhoWarningForNoOptionsExperiments(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-experiment", "fig3a", "-seeds", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "warning: -seeds/-rho have no effect") {
		t.Fatalf("missing ignored-flag warning on stderr:\n%s", errBuf.String())
	}
	if strings.Contains(out.String(), "warning:") {
		t.Fatalf("warning leaked into stdout:\n%s", out.String())
	}
	out.Reset()
	errBuf.Reset()
	if err := run([]string{"-experiment", "table2", "-quick", "-seeds", "3"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errBuf.String(), "warning: -seeds/-rho") {
		t.Fatalf("spurious warning for an Options experiment:\n%s", errBuf.String())
	}
}

func TestTraceOutWarningForUntracedExperiments(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	args := []string{"-experiment", "fig3a", "-trace-out", dir + "/t.jsonl"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "warning: -trace-out captures nothing") {
		t.Fatalf("missing trace-out warning on stderr:\n%s", errBuf.String())
	}
}

func TestTraceOutWritesParseableJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 grid skipped in -short mode")
	}
	dir := t.TempDir()
	path := dir + "/trace.jsonl"
	var out bytes.Buffer
	args := []string{"-experiment", "fig4a", "-quick", "-parallel", "2",
		"-trace-out", path, "-trace-match", "/ms/seed1"}
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace bytes") {
		t.Fatalf("no trace summary line:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace file has %d lines", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if cell, ok := m["cell"].(string); ok && !strings.Contains(cell, "/ms/seed1") {
			t.Fatalf("cell %q escaped -trace-match", cell)
		}
	}
}

func TestParallelAndProfileFlags(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-experiment", "table2", "-quick", "-parallel", "2",
		"-cpuprofile", dir + "/cpu.pprof", "-memprofile", dir + "/mem.pprof"}
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "completed in") {
		t.Fatalf("no completion marker:\n%s", out.String())
	}
	if _, err := os.Stat(dir + "/cpu.pprof"); err != nil {
		t.Fatalf("cpu profile not written: %v", err)
	}
}

func TestCSVEmission(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-experiment", "table2", "-quick", "-csv", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".csv") {
		t.Fatalf("csv dir contents: %v", entries)
	}
	data, err := os.ReadFile(dir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "trace,a,p,target_rho,inv_r,lambda_req_s") {
		t.Fatalf("csv header wrong:\n%s", string(data)[:80])
	}
}
