package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msweb/internal/trace"
)

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-profile", "ADL", "-lambda", "50", "-n", "500", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("generated trace unreadable: %v", err)
	}
	if len(tr.Requests) != 500 || tr.Name != "ADL" {
		t.Fatalf("trace: %d requests, name %q", len(tr.Requests), tr.Name)
	}

	// Write to a file and inspect it.
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	if err := run([]string{"-inspect", path}, &rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"name:           ADL", "requests:       500", "arrival ratio"} {
		if !strings.Contains(rep.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, rep.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-profile", "NOPE"},
		{"-demand", "weird"},
		{"-arrival", "weird"},
		{"-lambda", "0"},
		{"-inspect", "/nonexistent/file"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestArrivalModels(t *testing.T) {
	for _, model := range []string{"poisson", "mmpp", "diurnal"} {
		var out bytes.Buffer
		if err := run([]string{"-arrival", model, "-n", "100"}, &out); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if _, err := trace.Read(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("%s produced unreadable trace: %v", model, err)
		}
	}
}

func TestDemandModels(t *testing.T) {
	for _, model := range []string{"exp", "pareto", "det"} {
		var out bytes.Buffer
		if err := run([]string{"-demand", model, "-n", "100"}, &out); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
	}
}

func TestCLFConversion(t *testing.T) {
	log := `h - - [02/Jun/1999:04:05:06 -0700] "GET /a.html HTTP/1.0" 200 1000
h - - [02/Jun/1999:04:05:07 -0700] "GET /cgi-bin/q?x=1 HTTP/1.0" 200 500
not a log line
`
	path := filepath.Join(t.TempDir(), "access.log")
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-clf", path}, &out); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 2 {
		t.Fatalf("%d requests, want 2 (garbage skipped)", len(tr.Requests))
	}
	if tr.Requests[1].Class != trace.Dynamic {
		t.Fatal("CGI line not classified dynamic")
	}
}
