// Command mstrace generates and inspects synthetic Web traces.
//
// Usage:
//
//	mstrace -profile KSU -lambda 500 -n 20000 -r 0.025 > ksu.trace
//	mstrace -inspect ksu.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"msweb/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mstrace:", err)
		os.Exit(1)
	}
}

// run parses args and executes the tool, writing the trace or report to
// stdout. Split from main for testability.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mstrace", flag.ContinueOnError)
	profile := fs.String("profile", "KSU", "trace profile: UCB, KSU, ADL or DEC")
	lambda := fs.Float64("lambda", 500, "total arrival rate, requests/second")
	n := fs.Int("n", 10000, "number of requests")
	r := fs.Float64("r", 1.0/40, "service ratio μ_c/μ_h")
	muH := fs.Float64("muh", 1200, "static service rate per node, requests/second")
	seed := fs.Int64("seed", 1, "generation seed")
	demand := fs.String("demand", "exp", "demand distribution: exp, pareto or det")
	arrival := fs.String("arrival", "poisson", "arrival process: poisson, mmpp or diurnal")
	inspect := fs.String("inspect", "", "instead of generating, report a trace file's characteristics")
	clf := fs.String("clf", "", "instead of generating, convert a Common Log Format access log to a trace")
	markers := fs.String("dynamic-markers", "", "comma-separated extra URL substrings classified as dynamic (with -clf)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *clf != "" {
		f, err := os.Open(*clf)
		if err != nil {
			return err
		}
		defer f.Close()
		var extra []string
		if *markers != "" {
			extra = strings.Split(*markers, ",")
		}
		res, err := trace.ReadCLF(f, trace.CLFOptions{
			MuH: *muH, R: *r, Seed: *seed, SkipErrors: true, DynamicMarkers: extra,
		})
		if err != nil {
			return err
		}
		if res.Malformed > 0 {
			fmt.Fprintf(os.Stderr, "mstrace: skipped %d malformed of %d lines\n", res.Malformed, res.Lines)
		}
		return trace.Write(stdout, res.Trace)
	}

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		return report(stdout, tr)
	}

	prof, ok := trace.ProfileByName(*profile)
	if !ok {
		return fmt.Errorf("unknown profile %q (UCB, KSU, ADL, DEC)", *profile)
	}
	var dm trace.DemandModel
	switch *demand {
	case "exp":
		dm = trace.ExponentialDemand
	case "pareto":
		dm = trace.ParetoDemand
	case "det":
		dm = trace.DeterministicDemand
	default:
		return fmt.Errorf("unknown demand model %q (exp, pareto, det)", *demand)
	}
	var am trace.ArrivalModel
	switch *arrival {
	case "poisson":
		am = trace.PoissonArrivals
	case "mmpp":
		am = trace.MMPPArrivals
	case "diurnal":
		am = trace.DiurnalArrivals
	default:
		return fmt.Errorf("unknown arrival model %q (poisson, mmpp, diurnal)", *arrival)
	}
	tr, err := trace.Generate(trace.GenConfig{
		Profile: prof, Lambda: *lambda, Requests: *n, MuH: *muH, R: *r,
		Demand: dm, Arrival: am, Seed: *seed,
	})
	if err != nil {
		return err
	}
	return trace.Write(stdout, tr)
}

// report prints a trace's Table 1-style characteristics.
func report(w io.Writer, tr *trace.Trace) error {
	c := trace.Characterize(tr)
	fmt.Fprintf(w, "name:           %s\n", c.Name)
	fmt.Fprintf(w, "requests:       %d\n", c.Requests)
	fmt.Fprintf(w, "%% CGI:          %.1f\n", c.PctCGI)
	if c.MeanInterval > 0 {
		fmt.Fprintf(w, "mean interval:  %.4f s (rate %.1f req/s)\n", c.MeanInterval, 1/c.MeanInterval)
	}
	fmt.Fprintf(w, "mean HTML size: %.0f bytes\n", c.MeanHTMLSize)
	fmt.Fprintf(w, "mean CGI size:  %.0f bytes\n", c.MeanCGISize)
	fmt.Fprintf(w, "arrival ratio a: %.3f\n", c.ArrivalRatio)
	fmt.Fprintf(w, "mean demands:   static %.4f s, dynamic %.4f s (r ≈ %.4f)\n",
		c.MeanDemandH, c.MeanDemandC, c.R())
	return nil
}
