// Failover: the availability story that motivates the master/slave
// architecture in the paper's introduction — hiding server failures and
// recruiting idle, non-dedicated machines at peak load. A slave crashes
// mid-run (its in-flight CGI work restarts elsewhere), the master tier
// survives an outage via promotion, and two non-dedicated nodes join
// when the load peaks.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/trace"
)

func main() {
	const (
		nodes  = 10 // nodes 8 and 9 are non-dedicated
		lambda = 600
		r      = 1.0 / 40
	)
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.ADL, Lambda: lambda, Requests: 12000, MuH: 1200, R: r, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	wt := core.SampleW(tr, 16)

	cfg := cluster.DefaultConfig(nodes, 2)
	cfg.WarmupFraction = 0.05
	cfg.InitiallyDown = []int{8, 9} // non-dedicated workstations
	cfg.Events = []cluster.AvailabilityEvent{
		{Node: 5, At: 4.0, Available: false}, // slave crash...
		{Node: 5, At: 12.0, Available: true}, // ...and recovery
		{Node: 0, At: 8.0, Available: false}, // a master goes down
		{Node: 0, At: 14.0, Available: true},
		{Node: 8, At: 6.0, Available: true}, // idle workstations recruited
		{Node: 9, At: 6.0, Available: true},
	}
	res, err := cluster.Simulate(cfg, core.NewMS(wt, 1), tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d requests through crashes, an outage and recruitment\n", res.Summary.Count)
	fmt.Printf("stretch factor: %.2f (static %.2f, dynamic %.2f)\n",
		res.StretchFactor,
		res.Summary.ByClass["static"].StretchFactor,
		res.Summary.ByClass["dynamic"].StretchFactor)
	fmt.Printf("failovers (requests restarted on another node): %d\n\n", res.Failovers)

	fmt.Println("per-node activity:")
	for i, st := range res.NodeStats {
		role := "slave"
		switch {
		case i < 2:
			role = "master"
		case i >= 8:
			role = "recruited"
		}
		fmt.Printf("  node %d (%-9s): ran %4d jobs, aborted %2d in crashes\n",
			i, role, st.Completed, st.Aborted)
	}

	// The same trace without fault tolerance support would simply lose
	// the crashed node's work; here everything completed:
	total := uint64(0)
	for _, st := range res.NodeStats {
		total += st.Completed
	}
	fmt.Printf("\ncompleted %d executions for %d requests (retries included), zero lost\n",
		total, len(tr.Requests))
}
