// Quickstart: size a master/slave Web cluster with the paper's analytic
// model, simulate it against a synthetic CGI-heavy trace, and compare
// the stretch factor with a flat cluster of the same hardware.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

func main() {
	const (
		nodes  = 16
		lambda = 800 // requests/second offered to the whole cluster
		r      = 1.0 / 40
		muH    = 1200
	)

	// 1. Plan the master tier with Theorem 1.
	params := queuemodel.NewParams(nodes, lambda, trace.KSU.ArrivalRatio(), muH, r)
	plan, err := params.OptimalPlan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic plan: %d masters of %d nodes, reservation cap θ₂=%.3f\n", plan.M, nodes, plan.Theta2)
	fmt.Printf("predicted stretch: M/S %.2f vs flat %.2f (%.0f%% better)\n\n",
		plan.Stretch, plan.Flat, plan.Improvement())

	// 2. Generate a KSU-like trace (29% CGI, search scripts ≈90% CPU).
	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.KSU, Lambda: lambda, Requests: 20000, MuH: muH, R: r, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Off-line sample the CGI scripts' CPU weights, then simulate.
	wt := core.SampleW(tr, 16)
	msCfg := cluster.DefaultConfig(nodes, plan.M)
	msCfg.WarmupFraction = 0.1
	ms, err := cluster.Simulate(msCfg, core.NewMS(wt, 1), tr)
	if err != nil {
		log.Fatal(err)
	}

	flatCfg := cluster.DefaultConfig(nodes, nodes)
	flatCfg.WarmupFraction = 0.1
	flat, err := cluster.Simulate(flatCfg, core.NewFlat(), tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d requests over %.0f virtual seconds\n",
		ms.Summary.Count, ms.SimulatedSeconds)
	fmt.Printf("M/S   stretch factor: %6.2f  (static %.2f, dynamic %.2f)\n",
		ms.StretchFactor,
		ms.Summary.ByClass["static"].StretchFactor,
		ms.Summary.ByClass["dynamic"].StretchFactor)
	fmt.Printf("Flat  stretch factor: %6.2f  (static %.2f, dynamic %.2f)\n",
		flat.StretchFactor,
		flat.Summary.ByClass["static"].StretchFactor,
		flat.Summary.ByClass["dynamic"].StretchFactor)
	fmt.Printf("measured improvement: %.0f%%\n", (flat.StretchFactor/ms.StretchFactor-1)*100)
	fmt.Printf("\nM/S placed %d/%d dynamics at masters (%d dispatched remotely)\n",
		ms.MasterDynamics, ms.TotalDynamics, ms.RemoteDynamics)
}
