// Searchsite: capacity-planning walk for a search engine front end
// (the Inktomi/AltaVista scenario of the paper's introduction). Sweeps
// the offered load on a KSU-like workload and shows how the optimal
// master count, the reservation cap θ₂, and the M/S advantage move with
// utilization — including the regime where a *mis-sized* master tier is
// worse than a flat cluster, the paper's cautionary result.
//
// Run with: go run ./examples/searchsite
package main

import (
	"fmt"
	"log"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

func main() {
	const (
		nodes = 16
		r     = 1.0 / 40
		muH   = 1200
	)
	prof := trace.KSU
	a := prof.ArrivalRatio()

	fmt.Println("load sweep on a 16-node search site (KSU-like mix, r=1/40)")
	fmt.Printf("%-6s %-9s %-3s %-7s %-10s %-10s %-10s %-12s\n",
		"ρ_F", "λ(req/s)", "m", "θ₂", "SF(M/S)", "SF(flat)", "SF(bad m)", "M/S gain")
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.85} {
		unit := queuemodel.NewParams(nodes, 1, a, muH, r)
		lambda := rho / unit.FlatUtilization()
		params := queuemodel.NewParams(nodes, lambda, a, muH, r)
		plan, err := params.OptimalPlan()
		if err != nil {
			log.Fatal(err)
		}

		tr, err := trace.Generate(trace.GenConfig{
			Profile: prof, Lambda: lambda, Requests: 15000, MuH: muH, R: r, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		wt := core.SampleW(tr, 16)

		run := func(masters int, pol core.Policy) float64 {
			cfg := cluster.DefaultConfig(nodes, masters)
			cfg.WarmupFraction = 0.1
			res, err := cluster.Simulate(cfg, pol, tr)
			if err != nil {
				log.Fatal(err)
			}
			return res.StretchFactor
		}

		ms := run(plan.M, core.NewMS(wt, 1))
		flat := run(nodes, core.NewFlat())
		// A deliberately mis-sized master tier: half the nodes are
		// masters regardless of the workload.
		bad := run(nodes/2, core.NewMS(wt, 1, core.WithName("M/S bad-m")))

		fmt.Printf("%-6.2f %-9.0f %-3d %-7.3f %-10.2f %-10.2f %-10.2f %+.0f%%\n",
			rho, lambda, plan.M, plan.Theta2, ms, flat, bad,
			(flat/ms-1)*100)
	}
	fmt.Println("\nnote how the advantage grows with load, and how a master tier sized")
	fmt.Println("without Theorem 1 (the 'bad m' column) gives up much of that advantage.")
}
