// Digitallibrary: the Alexandria Digital Library scenario — an
// I/O-dominated CGI mix (catalog searches spend ~90% of their time on
// disk) on a heterogeneous cluster. Demonstrates why the RSRC cost
// formula's off-line w sampling matters: with sampling, disk-hungry
// requests avoid disk-saturated nodes; with the blind w=0.5 default
// they don't. Also exercises the heterogeneous-speed extension.
//
// Run with: go run ./examples/digitallibrary
package main

import (
	"fmt"
	"log"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

func main() {
	const (
		nodes = 12
		r     = 1.0 / 40
		muH   = 1200
	)
	prof := trace.ADL
	a := prof.ArrivalRatio()
	unit := queuemodel.NewParams(nodes, 1, a, muH, r)
	lambda := 0.68 / unit.FlatUtilization()
	plan, err := queuemodel.NewParams(nodes, lambda, a, muH, r).OptimalPlan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ADL-like library: %d nodes, λ=%.0f req/s, %d masters (Theorem 1)\n\n",
		nodes, lambda, plan.M)

	tr, err := trace.Generate(trace.GenConfig{
		Profile: prof, Lambda: lambda, Requests: 15000, MuH: muH, R: r, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	wt := core.SampleW(tr, 16)
	fmt.Println("off-line sampled CPU weights per CGI script:")
	for script := 1; script <= prof.NumScripts; script++ {
		fmt.Printf("  script %d: w=%.2f\n", script, wt.W(script))
	}
	fmt.Println()

	run := func(label string, speeds []float64, pol core.Policy) float64 {
		cfg := cluster.DefaultConfig(nodes, plan.M)
		cfg.WarmupFraction = 0.1
		cfg.Speeds = speeds
		res, err := cluster.Simulate(cfg, pol, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s SF=%6.2f (static %6.2f, dynamic %5.2f)\n",
			label, res.StretchFactor,
			res.Summary.ByClass["static"].StretchFactor,
			res.Summary.ByClass["dynamic"].StretchFactor)
		return res.StretchFactor
	}

	ms := run("M/S with sampling", nil, core.NewMS(wt, 1))
	ns := run("M/S-ns (blind w=0.5)", nil, core.NewMS(wt, 1, core.WithoutSampling(), core.WithName("M/S-ns")))
	fmt.Printf("→ demand sampling is worth %+.0f%% on this I/O-bound mix\n\n", (ns/ms-1)*100)

	// Heterogeneous extension: four of the slaves are 2x-CPU machines.
	speeds := make([]float64, nodes)
	for i := range speeds {
		speeds[i] = 1
		if i >= nodes-4 {
			speeds[i] = 2
		}
	}
	het := run("M/S on 8×1x + 4×2x nodes", speeds, core.NewMS(wt, 1))
	fmt.Printf("→ speed-aware RSRC exploits the fast nodes: %+.0f%% vs homogeneous\n", (ms/het-1)*100)
}
