// Livecluster: end-to-end run of the real (loopback HTTP) master/slave
// cluster — the substrate behind the Table 3 validation. Boots six
// nodes with one master, replays a short ADL-like trace over real TCP,
// and prints the measured stretch factor and per-node request counts.
//
// Run with: go run ./examples/livecluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"msweb/internal/core"
	"msweb/internal/httpcluster"
	"msweb/internal/replay"
	"msweb/internal/trace"
)

func main() {
	// Sun-Ultra-1 calibration: 110 static requests/second per node.
	const (
		muH       = 110
		r         = 1.0 / 40
		lambda    = 25
		seconds   = 8
		timeScale = 0.5 // replay twice as fast as real time
	)

	cfg := httpcluster.DefaultConfig(1, func(id int) core.Policy {
		return core.NewMS(nil, int64(id)+1)
	})
	cfg.Nodes = 6
	cfg.TimeScale = timeScale
	c, err := httpcluster.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	fmt.Printf("live cluster up: 6 nodes, 1 master at %s\n", c.MasterURLs()[0])

	tr, err := trace.Generate(trace.GenConfig{
		Profile: trace.ADL, Lambda: lambda, Requests: lambda * seconds,
		MuH: muH, R: r, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d ADL-like requests at %d req/s (%.1fx real time)...\n",
		len(tr.Requests), lambda, 1/timeScale)

	start := time.Now()
	res, err := replay.Run(context.Background(), c.MasterURLs(), tr, replay.Options{
		TimeScale: timeScale,
		Timeout:   time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndone in %.1fs wall clock (%d sent, %d failed)\n",
		time.Since(start).Seconds(), res.Sent, res.Failed)
	s := res.Summary
	fmt.Printf("stretch factor %.2f (static %.2f, dynamic %.2f)\n",
		s.StretchFactor,
		s.ByClass["static"].StretchFactor,
		s.ByClass["dynamic"].StretchFactor)
	fmt.Println("\nper-node executed requests (node 0 is the master):")
	for id, n := range c.NodeExecuted() {
		fmt.Printf("  node %d: %d\n", id, n)
	}
}
