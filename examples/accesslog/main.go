// Accesslog: the adoption path for real sites — take a Web server's
// access log in Common Log Format, import it (classifying static vs
// CGI URLs and synthesizing calibrated service demands), accelerate it
// to a target load, plan the master tier with Theorem 1, and simulate.
//
// The example writes a small synthetic CLF file first so it runs
// self-contained; point `-log` at your own access log instead.
//
// Run with: go run ./examples/accesslog [-log /path/to/access.log]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"msweb/internal/cluster"
	"msweb/internal/core"
	"msweb/internal/queuemodel"
	"msweb/internal/trace"
)

func main() {
	logPath := flag.String("log", "", "access log in Common Log Format (default: generate a demo log)")
	nodes := flag.Int("nodes", 8, "cluster size to plan for")
	rho := flag.Float64("rho", 0.65, "target utilization after acceleration")
	flag.Parse()

	path := *logPath
	if path == "" {
		path = writeDemoLog()
		fmt.Printf("no -log given; wrote a demo log to %s\n\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	res, err := trace.ReadCLF(f, trace.CLFOptions{
		MuH: 1200, R: 1.0 / 40, SkipErrors: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Malformed > 0 {
		fmt.Printf("skipped %d malformed lines of %d\n", res.Malformed, res.Lines)
	}
	c := trace.Characterize(res.Trace)
	fmt.Printf("imported %d requests: %.1f%% CGI, a=%.3f, native rate %.1f req/s\n",
		c.Requests, c.PctCGI, c.ArrivalRatio, 1/c.MeanInterval)

	// Accelerate the historical log to the target utilization, the
	// paper's replay methodology.
	params := queuemodel.NewParams(*nodes, 1, c.ArrivalRatio, 1200, 1.0/40)
	targetLambda := *rho / params.FlatUtilization()
	factor := targetLambda * c.MeanInterval
	accelerated := trace.ScaleIntervals(res.Trace, factor)
	fmt.Printf("accelerating ×%.0f to %.0f req/s for a %d-node cluster at ρ=%.2f\n\n",
		factor, targetLambda, *nodes, *rho)

	plan, err := queuemodel.NewParams(*nodes, targetLambda, c.ArrivalRatio, 1200, 1.0/40).OptimalPlan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 1 plan: %d masters, θ₂=%.3f, predicted gain %.0f%%\n",
		plan.M, plan.Theta2, plan.Improvement())

	wt := core.SampleW(accelerated, 16)
	cfg := cluster.DefaultConfig(*nodes, plan.M)
	cfg.WarmupFraction = 0.1
	cfg.Cache = &cluster.CacheConfig{Capacity: 1024, TTL: 60}
	simRes, err := cluster.Simulate(cfg, core.NewMS(wt, 1), accelerated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated stretch factor: %.2f\n", simRes.StretchFactor)
	for _, class := range []string{"static", "dynamic", "cached"} {
		if cs, ok := simRes.Summary.ByClass[class]; ok {
			fmt.Printf("  %-8s n=%-6d SF=%.2f\n", class, cs.Count, cs.StretchFactor)
		}
	}
	if simRes.CacheStats.Hits > 0 {
		fmt.Printf("dynamic-content cache: %.0f%% hit rate on repeated query URLs\n",
			100*simRes.CacheStats.HitRatio())
	}
}

// writeDemoLog fabricates a plausible access log: static pages, a popular
// search CGI with repeating queries, and image fetches.
func writeDemoLog() string {
	path := filepath.Join(os.TempDir(), "msweb-demo-access.log")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 4000; i++ {
		min := i / 120 % 60
		sec := i / 2 % 60
		switch i % 4 {
		case 0:
			fmt.Fprintf(f, "h%d - - [02/Jun/1999:04:%02d:%02d -0700] \"GET /index.html HTTP/1.0\" 200 7519\n", i%19, min, sec)
		case 1:
			fmt.Fprintf(f, "h%d - - [02/Jun/1999:04:%02d:%02d -0700] \"GET /img/%d.gif HTTP/1.0\" 200 2326\n", i%23, min, sec, i%12)
		case 2:
			fmt.Fprintf(f, "h%d - - [02/Jun/1999:04:%02d:%02d -0700] \"GET /cgi-bin/search?q=%d HTTP/1.0\" 200 8730\n", i%17, min, sec, i%397)
		default:
			fmt.Fprintf(f, "h%d - - [02/Jun/1999:04:%02d:%02d -0700] \"GET /docs/paper.html HTTP/1.0\" 200 4591\n", i%13, min, sec)
		}
	}
	return path
}
